//! [`NodeMap`]: a node-id-indexed slot map for per-node state.
//!
//! Node ids in this workspace are small, dense `u32`s — the tier boots
//! ids `0..n` and provisioning hands out `max+1` onward, so even a
//! cluster that scales in and out for days stays within a few hundred
//! ids. The serving path resolves per-node state (the cache node, its
//! circuit breaker, its telemetry counters) on *every* lookup, and a
//! `BTreeMap<NodeId, T>` walk there is pointer-chasing the hot path can
//! feel: at 100+ nodes each walk is ~7 cache-cold comparisons, and the
//! lookup path does several per key.
//!
//! `NodeMap` stores `Vec<Option<T>>` indexed by the id itself: `get` is
//! one bounds check and one slot read. Iteration is in ascending id
//! order — exactly the order `BTreeMap` iterates — so swapping one for
//! the other is invisible to golden traces, dumps, and any code that
//! relies on deterministic per-node ordering.

use crate::NodeId;

/// A map from [`NodeId`] to `T`, laid out as an id-indexed slot vector.
///
/// # Example
///
/// ```
/// use elmem_util::{nodemap::NodeMap, NodeId};
///
/// let mut m = NodeMap::new();
/// m.insert(NodeId(2), "b");
/// m.insert(NodeId(0), "a");
/// assert_eq!(m.len(), 2);
/// assert_eq!(m.get(NodeId(2)), Some(&"b"));
/// // Ascending id order, like a BTreeMap.
/// assert_eq!(m.keys().collect::<Vec<_>>(), vec![NodeId(0), NodeId(2)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeMap<T> {
    slots: Vec<Option<T>>,
    len: usize,
}

impl<T> NodeMap<T> {
    /// Creates an empty map.
    pub fn new() -> Self {
        NodeMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Number of nodes present.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value for `id`, if present.
    #[inline]
    pub fn get(&self, id: NodeId) -> Option<&T> {
        self.slots.get(id.0 as usize)?.as_ref()
    }

    /// Mutable access to the value for `id`, if present.
    #[inline]
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut T> {
        self.slots.get_mut(id.0 as usize)?.as_mut()
    }

    /// Whether `id` is present.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        self.get(id).is_some()
    }

    /// Inserts a value, returning the previous one if any.
    pub fn insert(&mut self, id: NodeId, value: T) -> Option<T> {
        let idx = id.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let old = self.slots[idx].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the value for `id`, if present.
    pub fn remove(&mut self, id: NodeId) -> Option<T> {
        let old = self.slots.get_mut(id.0 as usize)?.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Mutable access to `id`, inserting `default()` first if absent.
    #[inline]
    pub fn get_or_insert_with(&mut self, id: NodeId, default: impl FnOnce() -> T) -> &mut T {
        let idx = id.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let slot = &mut self.slots[idx];
        if slot.is_none() {
            *slot = Some(default());
            self.len += 1;
        }
        slot.as_mut().expect("slot filled above")
    }

    /// Present ids in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter().map(|(id, _)| id)
    }

    /// Present values in ascending id order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// Present `(id, value)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (NodeId(i as u32), v)))
    }

    /// Two distinct values mutably at once (e.g. a migration's source and
    /// destination nodes). `None` if either id is absent or `a == b`.
    pub fn get_pair_mut(&mut self, a: NodeId, b: NodeId) -> Option<(&mut T, &mut T)> {
        if a == b || !self.contains(a) || !self.contains(b) {
            return None;
        }
        let (lo, hi) = (a.0.min(b.0) as usize, a.0.max(b.0) as usize);
        let (left, right) = self.slots.split_at_mut(hi);
        let lo_ref = left[lo].as_mut().expect("checked above");
        let hi_ref = right[0].as_mut().expect("checked above");
        if a.0 < b.0 {
            Some((lo_ref, hi_ref))
        } else {
            Some((hi_ref, lo_ref))
        }
    }
}

impl<T> FromIterator<(NodeId, T)> for NodeMap<T> {
    fn from_iter<I: IntoIterator<Item = (NodeId, T)>>(iter: I) -> Self {
        let mut m = NodeMap::new();
        for (id, v) in iter {
            m.insert(id, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = NodeMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(NodeId(5), 50), None);
        assert_eq!(m.insert(NodeId(5), 55), Some(50));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(NodeId(5)), Some(&55));
        assert_eq!(m.get(NodeId(4)), None);
        assert_eq!(m.remove(NodeId(5)), Some(55));
        assert_eq!(m.remove(NodeId(5)), None);
        assert!(m.is_empty());
    }

    #[test]
    fn iterates_in_ascending_id_order_like_btreemap() {
        use std::collections::BTreeMap;
        let pairs = [(NodeId(9), 'c'), (NodeId(1), 'a'), (NodeId(4), 'b')];
        let m: NodeMap<char> = pairs.iter().copied().collect();
        let b: BTreeMap<NodeId, char> = pairs.iter().copied().collect();
        assert_eq!(
            m.iter().map(|(id, &v)| (id, v)).collect::<Vec<_>>(),
            b.iter().map(|(&id, &v)| (id, v)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn get_or_insert_with_inserts_once() {
        let mut m = NodeMap::new();
        *m.get_or_insert_with(NodeId(3), || 1) += 10;
        *m.get_or_insert_with(NodeId(3), || 1) += 10;
        assert_eq!(m.get(NodeId(3)), Some(&21));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn pair_mut_returns_in_argument_order() {
        let mut m: NodeMap<u32> = [(NodeId(2), 20), (NodeId(7), 70)].into_iter().collect();
        let (a, b) = m.get_pair_mut(NodeId(7), NodeId(2)).unwrap();
        assert_eq!((*a, *b), (70, 20));
        *a += 1;
        *b += 2;
        assert_eq!(m.get(NodeId(7)), Some(&71));
        assert_eq!(m.get(NodeId(2)), Some(&22));
    }

    #[test]
    fn pair_mut_rejects_same_or_missing() {
        let mut m: NodeMap<u32> = [(NodeId(2), 20)].into_iter().collect();
        assert!(m.get_pair_mut(NodeId(2), NodeId(2)).is_none());
        assert!(m.get_pair_mut(NodeId(2), NodeId(9)).is_none());
    }

    #[test]
    fn sparse_ids_do_not_inflate_len() {
        let mut m = NodeMap::new();
        m.insert(NodeId(100), ());
        assert_eq!(m.len(), 1);
        assert_eq!(m.keys().collect::<Vec<_>>(), vec![NodeId(100)]);
    }
}
