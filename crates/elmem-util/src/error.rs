//! Workspace-wide error type.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the ElMem crates' public APIs.
///
/// # Example
///
/// ```
/// use elmem_util::ElmemError;
/// let e = ElmemError::UnknownNode(7);
/// assert_eq!(e.to_string(), "unknown node id 7");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ElmemError {
    /// Referenced a node id that is not a member of the tier.
    UnknownNode(u32),
    /// A node needed by an in-flight operation is crashed or offline.
    NodeUnavailable(u32),
    /// An item is larger than the largest slab chunk and cannot be stored.
    ItemTooLarge {
        /// Total item footprint in bytes.
        item_bytes: u64,
        /// Largest chunk size supported by the store.
        max_chunk_bytes: u64,
    },
    /// The store has no memory left and nothing evictable in the needed class.
    OutOfMemory,
    /// A scaling request was invalid (e.g. scaling in to zero nodes).
    InvalidScaling(String),
    /// A migration plan referenced state that no longer exists.
    InconsistentMigration(String),
    /// Configuration value out of range.
    InvalidConfig(String),
    /// A machine-checked integrity invariant failed (chaos testing).
    InvariantViolation(String),
}

impl fmt::Display for ElmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElmemError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            ElmemError::NodeUnavailable(id) => write!(f, "node {id} is unavailable"),
            ElmemError::ItemTooLarge {
                item_bytes,
                max_chunk_bytes,
            } => write!(
                f,
                "item of {item_bytes} bytes exceeds largest chunk size {max_chunk_bytes}"
            ),
            ElmemError::OutOfMemory => write!(f, "store out of memory"),
            ElmemError::InvalidScaling(msg) => write!(f, "invalid scaling request: {msg}"),
            ElmemError::InconsistentMigration(msg) => {
                write!(f, "inconsistent migration state: {msg}")
            }
            ElmemError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ElmemError::InvariantViolation(msg) => write!(f, "invariant violation: {msg}"),
        }
    }
}

impl Error for ElmemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(ElmemError::OutOfMemory.to_string(), "store out of memory");
        assert_eq!(
            ElmemError::ItemTooLarge {
                item_bytes: 100,
                max_chunk_bytes: 50
            }
            .to_string(),
            "item of 100 bytes exceeds largest chunk size 50"
        );
        assert!(ElmemError::InvalidScaling("x".into())
            .to_string()
            .contains("x"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ElmemError>();
    }
}
