//! Cost/energy model of §II-B of the paper (experiment E8).
//!
//! The paper estimates, from Facebook's published hardware configurations
//! and Fan et al.'s power numbers, that a Memcached node (1 CPU socket,
//! 72 GB DRAM) consumes 299 W peak versus 204 W for an application-tier node
//! (2 sockets, 12 GB) — 47% more power — and that a memory-optimized EC2
//! instance costs $0.166/hr versus $0.100/hr for a compute-optimized one —
//! 66% more. This module reproduces that arithmetic so the `tab_cost`
//! experiment can regenerate the table.

use serde::{Deserialize, Serialize};

/// Hardware description of one server class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Number of CPU sockets.
    pub cpu_sockets: u32,
    /// DRAM capacity in GB.
    pub dram_gb: u32,
    /// Hourly rental cost in dollars (cloud pricing).
    pub hourly_cost_usd: f64,
}

/// Per-component peak power constants, normalized from Fan et al. \[28\]
/// as the paper describes: per-GB DRAM power and per-socket CPU power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Peak watts per CPU socket.
    pub watts_per_socket: f64,
    /// Peak watts per GB of DRAM.
    pub watts_per_gb: f64,
    /// Fixed platform overhead watts (fans, board, disks).
    pub watts_base: f64,
}

impl PowerModel {
    /// Power model calibrated so the paper's two headline nodes come out at
    /// 204 W (app node: 2 sockets, 12 GB) and 299 W (Memcached node:
    /// 1 socket, 72 GB), i.e. 47% higher for the cache node.
    ///
    /// Solving the two linear equations with a 40 W base:
    /// `2s + 12g = 164`, `s + 72g = 259` → `g = 177/66 ≈ 2.682`,
    /// `s = 82 − 6g ≈ 65.91`.
    pub fn paper_calibrated() -> Self {
        PowerModel {
            watts_per_socket: 65.90909090909092,
            watts_per_gb: 2.6818181818181817,
            watts_base: 40.0,
        }
    }

    /// Peak power draw of a server, in watts.
    pub fn peak_watts(&self, spec: &ServerSpec) -> f64 {
        self.watts_base
            + self.watts_per_socket * f64::from(spec.cpu_sockets)
            + self.watts_per_gb * f64::from(spec.dram_gb)
    }
}

/// The application-tier node of §II-B: 2 sockets, 12 GB,
/// compute-optimized EC2 large at $0.100/hr.
pub fn app_tier_spec() -> ServerSpec {
    ServerSpec {
        cpu_sockets: 2,
        dram_gb: 12,
        hourly_cost_usd: 0.100,
    }
}

/// The Memcached node of §II-B: 1 socket, 72 GB,
/// memory-optimized EC2 large at $0.166/hr.
pub fn memcached_spec() -> ServerSpec {
    ServerSpec {
        cpu_sockets: 1,
        dram_gb: 72,
        hourly_cost_usd: 0.166,
    }
}

/// Summary row of the cost/energy comparison (E8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostComparison {
    /// Memcached node peak watts.
    pub cache_watts: f64,
    /// App-tier node peak watts.
    pub app_watts: f64,
    /// Relative extra power of the cache node (e.g. 0.47 = +47%).
    pub power_overhead: f64,
    /// Relative extra hourly cost of the cache node (e.g. 0.66 = +66%).
    pub cost_overhead: f64,
}

/// Computes the §II-B comparison under a power model.
pub fn compare(model: &PowerModel) -> CostComparison {
    let app = app_tier_spec();
    let cache = memcached_spec();
    let aw = model.peak_watts(&app);
    let cw = model.peak_watts(&cache);
    CostComparison {
        cache_watts: cw,
        app_watts: aw,
        power_overhead: cw / aw - 1.0,
        cost_overhead: cache.hourly_cost_usd / app.hourly_cost_usd - 1.0,
    }
}

/// Savings from elasticity: given a demand trace of required node counts per
/// epoch and a static provisioning at the peak count, returns the fraction of
/// node-hours saved by scaling to demand (the paper's §II-C estimates 30–70%).
///
/// # Example
///
/// ```
/// use elmem_util::costmodel::elastic_savings;
/// // Half the time we need 10 nodes, half the time 4: static = 10 always.
/// let demand = vec![10, 4, 10, 4];
/// let s = elastic_savings(&demand);
/// assert!((s - 0.3).abs() < 1e-9);
/// ```
pub fn elastic_savings(required_nodes: &[u32]) -> f64 {
    let peak = required_nodes.iter().copied().max().unwrap_or(0);
    if peak == 0 || required_nodes.is_empty() {
        return 0.0;
    }
    let static_hours = u64::from(peak) * required_nodes.len() as u64;
    let elastic_hours: u64 = required_nodes.iter().map(|&n| u64::from(n)).sum();
    1.0 - elastic_hours as f64 / static_hours as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_paper_headline_numbers() {
        let m = PowerModel::paper_calibrated();
        let c = compare(&m);
        assert!((c.app_watts - 204.0).abs() < 0.5, "app {}", c.app_watts);
        assert!(
            (c.cache_watts - 299.0).abs() < 0.5,
            "cache {}",
            c.cache_watts
        );
        assert!((c.power_overhead - 0.47).abs() < 0.01);
        assert!((c.cost_overhead - 0.66).abs() < 0.01);
    }

    #[test]
    fn peak_watts_monotone_in_dram() {
        let m = PowerModel::paper_calibrated();
        let small = ServerSpec {
            cpu_sockets: 1,
            dram_gb: 8,
            hourly_cost_usd: 0.1,
        };
        let big = ServerSpec {
            cpu_sockets: 1,
            dram_gb: 64,
            hourly_cost_usd: 0.1,
        };
        assert!(m.peak_watts(&big) > m.peak_watts(&small));
    }

    #[test]
    fn elastic_savings_edges() {
        assert_eq!(elastic_savings(&[]), 0.0);
        assert_eq!(elastic_savings(&[0, 0]), 0.0);
        assert_eq!(elastic_savings(&[5, 5, 5]), 0.0);
    }

    #[test]
    fn elastic_savings_diurnal() {
        // Paper: 2x diurnal variation enables 30-70% savings depending on shape.
        let demand: Vec<u32> = (0..24)
            .map(|h| if (8..20).contains(&h) { 10 } else { 5 })
            .collect();
        let s = elastic_savings(&demand);
        assert!(s > 0.2 && s < 0.3, "savings {s}");
    }
}
