//! Shared foundation types for the ElMem reproduction.
//!
//! This crate holds the small vocabulary types used by every other crate in
//! the workspace: identifier newtypes ([`KeyId`], [`NodeId`]), simulated time
//! ([`time::SimTime`]), byte quantities ([`bytesize::ByteSize`]), a
//! deterministic splittable RNG ([`rng::DetRng`]), streaming statistics
//! ([`stats`]) and the static cost/energy model from §II-B of the paper
//! ([`costmodel`]).
//!
//! # Example
//!
//! ```
//! use elmem_util::{KeyId, NodeId, time::SimTime};
//!
//! let key = KeyId(42);
//! let node = NodeId(3);
//! let t = SimTime::from_secs(2) + SimTime::from_millis(500);
//! assert_eq!(t.as_millis(), 2_500);
//! assert_ne!(key.0, u64::from(node.0));
//! ```

pub mod bytesize;
pub mod costmodel;
pub mod error;
pub mod hashutil;
pub mod json;
pub mod nodemap;
pub mod par;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod time;

pub use bytesize::ByteSize;
pub use error::ElmemError;
pub use nodemap::NodeMap;
pub use rng::DetRng;
pub use telemetry::{EventTrace, LatencyHistogram, TelemetryConfig};
pub use time::SimTime;

use serde::{Deserialize, Serialize};

/// Identifier of a key in the keyspace.
///
/// The paper's workload uses 11-byte string keys; in the simulation we
/// identify keys by a dense integer id and derive their hash and value size
/// deterministically from it. The *wire* size of a key is still accounted as
/// 11 bytes (see `elmem-workload`).
///
/// ```
/// use elmem_util::KeyId;
/// let k = KeyId(7);
/// assert_eq!(k.0, 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct KeyId(pub u64);

impl std::fmt::Display for KeyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// Identifier of a cache node in the Memcached tier.
///
/// ```
/// use elmem_util::NodeId;
/// assert!(NodeId(1) < NodeId(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_id_display() {
        assert_eq!(KeyId(5).to_string(), "k5");
    }

    #[test]
    fn node_id_display_and_order() {
        assert_eq!(NodeId(2).to_string(), "node2");
        assert!(NodeId(0) < NodeId(9));
    }

    #[test]
    fn ids_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KeyId>();
        assert_send_sync::<NodeId>();
    }
}
