//! Telemetry primitives: mergeable log-bucketed latency histograms and a
//! ring-buffered structured event trace.
//!
//! The paper's whole argument rests on *time-series* evidence (Fig. 2's
//! post-scaling 95%ile spike, the >30-minute hit-rate recovery), so the
//! reproduction needs observability that is as deterministic as the
//! simulator itself: identical seeds must yield **byte-identical** dumps.
//! That drives every design choice here:
//!
//! * [`LatencyHistogram`] uses a *fixed* HDR-style bucket layout
//!   ([`SUB_BITS`] sub-buckets per power of two, values in nanoseconds),
//!   so merges are exact element-wise adds — associative and commutative —
//!   and quantile estimates depend only on the recorded multiset, never on
//!   arrival order;
//! * [`EventTrace`] is a bounded ring buffer of [`Event`]s with a
//!   monotone sequence number, so a capacity overflow drops the *oldest*
//!   events deterministically and the retained tail is stable;
//! * the JSON dump helpers emit integers wherever possible and a single
//!   canonical field order, so golden-file comparisons are `==` on bytes.
//!
//! The event *taxonomy* ([`EventKind`]) lives here, in the vocabulary
//! crate, because events are emitted from every layer: the serving stack
//! (`elmem-cluster`: request served/missed/timeout, breaker transitions),
//! the control plane (`elmem-core`: probe outcomes, migration phases,
//! scaling decisions), and the fault injector (`elmem-sim` actions,
//! recorded by the experiment driver). The aggregation into one dump is
//! `elmem_core::telemetry`'s job.

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::{NodeId, SimTime};

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` equal-width buckets, bounding the relative quantile error
/// at `2^-SUB_BITS` (≈ 3.1%) — "within one bucket width".
pub const SUB_BITS: u32 = 5;

const SUBS: u64 = 1 << SUB_BITS;

/// Total number of buckets in the fixed layout: a linear segment of width-1
/// buckets below `2^SUB_BITS`, then 32 sub-buckets for every octave (values
/// with most-significant bit 5 through 63) up to `u64::MAX` nanoseconds. The
/// layout is a constant of the format — two histograms always merge
/// bucket-by-bucket.
pub const NUM_BUCKETS: usize = (SUBS + (64 - SUB_BITS as u64) * SUBS) as usize;

/// Maps a value (nanoseconds) to its bucket index in the fixed layout.
///
/// Branch-free: OR-ing in `SUBS` pins the most-significant bit to at least
/// `SUB_BITS`, which folds the linear segment (`v < SUBS` → index `v`,
/// octave 0) into the general octave formula — one `leading_zeros`
/// (a single instruction on every target we run on), a shift and a
/// multiply, with no data-dependent branch for values that straddle the
/// segment boundary. This sits on the per-request latency-record path.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    let octave = u64::from(63 - (v | SUBS).leading_zeros()) - u64::from(SUB_BITS);
    (octave * SUBS + (v >> octave)) as usize
}

/// The smallest value mapping into bucket `i`.
#[inline]
pub fn bucket_lower(i: usize) -> u64 {
    let i = i as u64;
    if i < SUBS {
        i
    } else {
        let octave = (i - SUBS) / SUBS;
        let sub = (i - SUBS) % SUBS;
        (SUBS + sub) << octave
    }
}

/// The width of bucket `i` (1 in the linear segment, `2^octave` above it).
#[inline]
pub fn bucket_width(i: usize) -> u64 {
    let i = i as u64;
    if i < SUBS {
        1
    } else {
        1u64 << ((i - SUBS) / SUBS)
    }
}

/// The largest value mapping into bucket `i`.
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    bucket_lower(i).saturating_add(bucket_width(i) - 1)
}

/// A mergeable log-bucketed latency histogram with a fixed bucket layout.
///
/// Values are recorded in nanoseconds. Because the layout is a constant,
/// [`merge`](LatencyHistogram::merge) is an exact element-wise add:
/// associative, commutative, and loss-free — `merge(a, b)` reports exactly
/// the quantiles of the combined multiset (to within one bucket width).
/// `min`/`max`/`sum`/`count` are tracked exactly.
///
/// # Example
///
/// ```
/// use elmem_util::telemetry::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for v in [100, 200, 300, 400, 1_000_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max(), 1_000_000);
/// let p50 = h.value_at_quantile(0.5); // nearest rank: the 3rd value, 300
/// assert!((300..=303).contains(&p50), "p50 within one bucket: {p50}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value (nanoseconds).
    pub fn record(&mut self, nanos: u64) {
        self.counts[bucket_index(nanos)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(nanos);
        self.min = self.min.min(nanos);
        self.max = self.max.max(nanos);
    }

    /// Records a [`SimTime`] span.
    pub fn record_time(&mut self, t: SimTime) {
        self.record(t.as_nanos());
    }

    /// Adds every bucket of `other` into `self`. Exact: the result is
    /// indistinguishable from having recorded both value streams into one
    /// histogram, in any order.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values (saturating), nanoseconds.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values, nanoseconds (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (nearest-rank over buckets), reported as the upper
    /// bound of the bucket holding the rank — an overestimate by at most
    /// one bucket width, and monotone in `q`.
    ///
    /// Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or NaN.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report past the exact max (the top bucket's upper
                // bound can overshoot it).
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (p50), nanoseconds.
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(0.50)
    }

    /// 95th percentile, nanoseconds.
    pub fn p95(&self) -> u64 {
        self.value_at_quantile(0.95)
    }

    /// 99th percentile, nanoseconds.
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(0.99)
    }

    /// Non-empty buckets as `(index, count)` pairs, in index order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Appends the canonical JSON encoding: exact integer summary fields
    /// plus the sparse `(index, count)` bucket list. Byte-stable for a
    /// given recorded multiset.
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\
             \"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.min(),
            self.max,
            self.p50(),
            self.p95(),
            self.p99()
        );
        for (n, (i, c)) in self.nonzero_buckets().enumerate() {
            if n > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{i},{c}]");
        }
        out.push_str("]}");
    }

    /// The canonical JSON encoding as a string.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }
}

/// Circuit-breaker phases, as the event stream names them (mirrors
/// `elmem_cluster::BreakerState`, which cannot be used here without
/// inverting the crate dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerPhase {
    /// Requests flow to the node.
    Closed,
    /// Requests fail over immediately.
    Open,
    /// The next request is a probe.
    HalfOpen,
}

impl BreakerPhase {
    /// Stable lowercase label used in JSON dumps.
    pub fn label(self) -> &'static str {
        match self {
            BreakerPhase::Closed => "closed",
            BreakerPhase::Open => "open",
            BreakerPhase::HalfOpen => "half_open",
        }
    }
}

/// Heartbeat probe outcomes, as the event stream names them (mirrors
/// `elmem_core::healing::ProbeOutcome`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeClass {
    /// Answered within the probe budget.
    Ack,
    /// Reachable but past the budget (partition/slow link).
    Degraded,
    /// Nothing came back: crashed or powered off.
    Lost,
}

impl ProbeClass {
    /// Stable lowercase label used in JSON dumps.
    pub fn label(self) -> &'static str {
        match self {
            ProbeClass::Ack => "ack",
            ProbeClass::Degraded => "degraded",
            ProbeClass::Lost => "lost",
        }
    }
}

/// The three §III-D migration phases, as the event stream names them
/// (mirrors `elmem_core::migration::MigrationPhase`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MigrationPhaseKind {
    /// §III-D1: metadata dump + transfer.
    MetadataTransfer,
    /// §III-D2: FuseCache on the destinations.
    HotnessComparison,
    /// §III-D3: shipping and importing the chosen pairs.
    DataMigration,
}

impl MigrationPhaseKind {
    /// Stable lowercase label used in JSON dumps.
    pub fn label(self) -> &'static str {
        match self {
            MigrationPhaseKind::MetadataTransfer => "metadata_transfer",
            MigrationPhaseKind::HotnessComparison => "hotness_comparison",
            MigrationPhaseKind::DataMigration => "data_migration",
        }
    }
}

/// Why a migration aborted, as the event stream names it (mirrors
/// `elmem_core::migration::AbortCause`; the involved node travels in
/// [`Event::node`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortClass {
    /// A retiring source died mid-flight.
    SourceCrashed,
    /// A retained or new destination died mid-flight.
    DestinationCrashed,
    /// A phase overran its deadline.
    DeadlineExceeded,
    /// The shipment retry budget ran out.
    RetriesExhausted,
    /// The Master died mid-migration and its recovery policy gave up
    /// instead of resuming.
    MasterCrashed,
}

impl AbortClass {
    /// Stable lowercase label used in JSON dumps.
    pub fn label(self) -> &'static str {
        match self {
            AbortClass::SourceCrashed => "source_crashed",
            AbortClass::DestinationCrashed => "destination_crashed",
            AbortClass::DeadlineExceeded => "deadline_exceeded",
            AbortClass::RetriesExhausted => "retries_exhausted",
            AbortClass::MasterCrashed => "master_crashed",
        }
    }
}

/// One structured event in the trace.
///
/// The taxonomy covers the serving path (request served/timeout/failover,
/// breaker transitions), the failure detector (probe outcomes, suspicion,
/// confirmed deaths, recoveries), the migration pipeline (phase
/// start/end/abort), scaling decisions and membership commits, and
/// injected faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// One web request completed (only recorded when
    /// [`TelemetryConfig::trace_requests`] is set — the highest-volume
    /// event kind by far).
    RequestServed {
        /// Cache lookups that hit.
        hits: u32,
        /// Total cache lookups in the multi-get batch.
        lookups: u32,
    },
    /// A lookup paid the full client timeout against an unreachable node.
    RequestTimeout,
    /// A lookup failed over to the database immediately (open breaker).
    FastFailover,
    /// A circuit breaker changed state.
    BreakerTransition {
        /// State before.
        from: BreakerPhase,
        /// State after.
        to: BreakerPhase,
    },
    /// A heartbeat probe observed something other than a timely ack
    /// (timely acks are elided to keep the stream proportional to
    /// *trouble*, not to uptime).
    Probe {
        /// What the probe saw.
        outcome: ProbeClass,
    },
    /// The failure detector moved a node to `Suspected`.
    NodeSuspected,
    /// The failure detector confirmed a death.
    NodeConfirmedDead,
    /// A fault-plan crash landed.
    NodeCrashed,
    /// A fault-plan NIC slowdown landed.
    LinkDegraded,
    /// A fault-plan link restore landed.
    LinkRestored,
    /// A fault-plan partition landed.
    LinkPartitioned,
    /// The Master accepted a scaling decision (scripted or AutoScaler).
    ScalingDecided {
        /// Members before.
        from_nodes: u32,
        /// Members after every deferred commit lands.
        to_nodes: u32,
    },
    /// The client-visible membership changed (commit applied).
    MembershipCommitted {
        /// Members after the flip.
        members: u32,
    },
    /// A migration phase began.
    MigrationPhaseStart {
        /// Which phase.
        phase: MigrationPhaseKind,
    },
    /// A migration phase finished.
    MigrationPhaseEnd {
        /// Which phase.
        phase: MigrationPhaseKind,
    },
    /// The supervisor aborted the migration inside a phase.
    MigrationAborted {
        /// The phase the abort landed in.
        phase: MigrationPhaseKind,
        /// Why.
        cause: AbortClass,
    },
    /// The self-healing loop finished recovering a confirmed death
    /// ([`Event::node`] is the dead node).
    RecoveryCompleted {
        /// The admitted replacement, if the policy admits one.
        replacement: Option<NodeId>,
        /// Whether the replacement was warmed before the flip.
        warmed: bool,
    },
    /// The Master process crashed mid-migration (simulated control-plane
    /// fault, distinct from a cache-node [`EventKind::NodeCrashed`]).
    MasterCrashed,
    /// A restarted Master replayed its journal and resumed an in-flight
    /// migration inside `phase` (DESIGN.md §13).
    MigrationResumed {
        /// The phase the interrupting crash landed in.
        phase: MigrationPhaseKind,
    },
    /// The Master deferred a conflicting scaling request until the job it
    /// conflicts with drains.
    ScalingDeferred {
        /// When the deferred request is retried.
        until: SimTime,
    },
}

impl EventKind {
    /// Stable snake_case label used in JSON dumps.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::RequestServed { .. } => "request_served",
            EventKind::RequestTimeout => "request_timeout",
            EventKind::FastFailover => "fast_failover",
            EventKind::BreakerTransition { .. } => "breaker_transition",
            EventKind::Probe { .. } => "probe",
            EventKind::NodeSuspected => "node_suspected",
            EventKind::NodeConfirmedDead => "node_confirmed_dead",
            EventKind::NodeCrashed => "node_crashed",
            EventKind::LinkDegraded => "link_degraded",
            EventKind::LinkRestored => "link_restored",
            EventKind::LinkPartitioned => "link_partitioned",
            EventKind::ScalingDecided { .. } => "scaling_decided",
            EventKind::MembershipCommitted { .. } => "membership_committed",
            EventKind::MigrationPhaseStart { .. } => "migration_phase_start",
            EventKind::MigrationPhaseEnd { .. } => "migration_phase_end",
            EventKind::MigrationAborted { .. } => "migration_aborted",
            EventKind::RecoveryCompleted { .. } => "recovery_completed",
            EventKind::MasterCrashed => "master_crashed",
            EventKind::MigrationResumed { .. } => "migration_resumed",
            EventKind::ScalingDeferred { .. } => "scaling_deferred",
        }
    }
}

/// One traced event: when, which node (if any), what.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Monotone sequence number, in emission order.
    pub seq: u64,
    /// Simulated time of the event.
    pub at: SimTime,
    /// The node the event concerns, when it concerns one.
    pub node: Option<NodeId>,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Appends the canonical flat-object JSON encoding. Field order is
    /// fixed: `seq`, `t_ns`, `node`, `kind`, then kind-specific payload
    /// fields in declaration order.
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"seq\":{},\"t_ns\":{},\"node\":",
            self.seq,
            self.at.as_nanos()
        );
        match self.node {
            Some(n) => {
                let _ = write!(out, "{}", n.0);
            }
            None => out.push_str("null"),
        }
        let _ = write!(out, ",\"kind\":\"{}\"", self.kind.label());
        match self.kind {
            EventKind::RequestServed { hits, lookups } => {
                let _ = write!(out, ",\"hits\":{hits},\"lookups\":{lookups}");
            }
            EventKind::BreakerTransition { from, to } => {
                let _ = write!(
                    out,
                    ",\"from\":\"{}\",\"to\":\"{}\"",
                    from.label(),
                    to.label()
                );
            }
            EventKind::Probe { outcome } => {
                let _ = write!(out, ",\"outcome\":\"{}\"", outcome.label());
            }
            EventKind::ScalingDecided {
                from_nodes,
                to_nodes,
            } => {
                let _ = write!(out, ",\"from_nodes\":{from_nodes},\"to_nodes\":{to_nodes}");
            }
            EventKind::MembershipCommitted { members } => {
                let _ = write!(out, ",\"members\":{members}");
            }
            EventKind::MigrationPhaseStart { phase } | EventKind::MigrationPhaseEnd { phase } => {
                let _ = write!(out, ",\"phase\":\"{}\"", phase.label());
            }
            EventKind::MigrationAborted { phase, cause } => {
                let _ = write!(
                    out,
                    ",\"phase\":\"{}\",\"cause\":\"{}\"",
                    phase.label(),
                    cause.label()
                );
            }
            EventKind::RecoveryCompleted {
                replacement,
                warmed,
            } => {
                out.push_str(",\"replacement\":");
                match replacement {
                    Some(n) => {
                        let _ = write!(out, "{}", n.0);
                    }
                    None => out.push_str("null"),
                }
                let _ = write!(out, ",\"warmed\":{warmed}");
            }
            EventKind::MigrationResumed { phase } => {
                let _ = write!(out, ",\"phase\":\"{}\"", phase.label());
            }
            EventKind::ScalingDeferred { until } => {
                let _ = write!(out, ",\"until_ns\":{}", until.as_nanos());
            }
            _ => {}
        }
        out.push('}');
    }
}

/// Telemetry knobs for one experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Ring-buffer capacity of the event trace; when full, the *oldest*
    /// events are dropped (and counted). 0 disables tracing entirely.
    pub trace_capacity: usize,
    /// Record a [`EventKind::RequestServed`] event per web request. Off by
    /// default: at experiment scale these dominate the ring and evict the
    /// control-plane events the trace exists for.
    pub trace_requests: bool,
    /// Window length of the counter time series (hit rate, DB load, bytes
    /// migrated per window).
    pub sample_every: SimTime,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            trace_capacity: 65_536,
            trace_requests: false,
            sample_every: SimTime::from_secs(1),
        }
    }
}

/// A bounded ring buffer of [`Event`]s with monotone sequence numbers.
///
/// # Example
///
/// ```
/// use elmem_util::telemetry::{EventKind, EventTrace};
/// use elmem_util::{NodeId, SimTime};
///
/// let mut t = EventTrace::with_capacity(2);
/// t.record(SimTime::from_secs(1), Some(NodeId(0)), EventKind::RequestTimeout);
/// t.record(SimTime::from_secs(2), Some(NodeId(0)), EventKind::FastFailover);
/// t.record(SimTime::from_secs(3), None, EventKind::MembershipCommitted { members: 3 });
/// assert_eq!(t.len(), 2, "capacity 2: oldest dropped");
/// assert_eq!(t.dropped(), 1);
/// assert_eq!(t.recorded(), 3);
/// assert_eq!(t.events().next().unwrap().seq, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventTrace {
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    events: VecDeque<Event>,
}

impl EventTrace {
    /// A trace holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventTrace {
            capacity,
            next_seq: 0,
            dropped: 0,
            events: VecDeque::with_capacity(capacity.min(4096)),
        }
    }

    /// Records one event. When the ring is full the oldest event is
    /// dropped; with capacity 0 nothing is ever retained.
    pub fn record(&mut self, at: SimTime, node: Option<NodeId>, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(Event {
            seq,
            at,
            node,
            kind,
        });
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Retained events as a vector, oldest first.
    pub fn to_vec(&self) -> Vec<Event> {
        self.events.iter().copied().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped by the ring (recorded − retained).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (the next sequence number).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Appends a JSON array of events (one flat object each) to `out`.
pub fn write_events_json(out: &mut String, events: &[Event]) {
    out.push('[');
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        e.write_json(out);
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_exhaustive_and_ordered() {
        // Every index round-trips: lower(i) maps back to i, bounds nest.
        for i in 0..NUM_BUCKETS {
            let lo = bucket_lower(i);
            let hi = bucket_upper(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
            assert!(lo <= hi);
            if i + 1 < NUM_BUCKETS {
                assert_eq!(
                    bucket_lower(i + 1),
                    hi.checked_add(1).unwrap(),
                    "buckets {i},{} must tile without gaps",
                    i + 1
                );
            }
        }
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for v in [1u64, 31, 32, 33, 1_000, 123_456_789, u64::MAX / 3] {
            let i = bucket_index(v);
            let width = bucket_width(i);
            assert!(
                width == 1 || width <= v / (SUBS - 1) + 1,
                "bucket width {width} too coarse for {v}"
            );
        }
    }

    #[test]
    fn histogram_records_and_reports_quantiles() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1000);
        assert_eq!(h.max(), 1_000_000);
        let p50 = h.p50();
        let exact = 500_000u64;
        assert!(p50 >= exact && p50 - exact <= bucket_width(bucket_index(p50)));
        assert!(h.p95() >= 950_000);
        assert!(h.p99() >= 990_000);
        assert_eq!(h.value_at_quantile(1.0), 1_000_000);
    }

    #[test]
    fn histogram_empty_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p95(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_is_exact() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for v in [5u64, 100, 10_000, 77] {
            a.record(v);
            both.record(v);
        }
        for v in [9u64, 1_000_000, 42] {
            b.record(v);
            both.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, both, "merge must equal recording the union");
    }

    #[test]
    fn quantile_is_monotone() {
        let mut h = LatencyHistogram::new();
        for v in [3u64, 9, 27, 81, 243, 729, 2187] {
            h.record(v);
        }
        let mut last = 0u64;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = h.value_at_quantile(q);
            assert!(v >= last, "quantile must be monotone ({q}: {v} < {last})");
            last = v;
        }
    }

    #[test]
    fn trace_ring_drops_oldest() {
        let mut t = EventTrace::with_capacity(3);
        for s in 0..5 {
            t.record(SimTime::from_secs(s), None, EventKind::RequestTimeout);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.recorded(), 5);
        let seqs: Vec<u64> = t.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_trace_retains_nothing() {
        let mut t = EventTrace::with_capacity(0);
        t.record(SimTime::ZERO, None, EventKind::RequestTimeout);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.recorded(), 1);
    }

    #[test]
    fn event_json_is_flat_and_stable() {
        let e = Event {
            seq: 7,
            at: SimTime::from_millis(1500),
            node: Some(NodeId(3)),
            kind: EventKind::BreakerTransition {
                from: BreakerPhase::Closed,
                to: BreakerPhase::Open,
            },
        };
        let mut s = String::new();
        e.write_json(&mut s);
        assert_eq!(
            s,
            "{\"seq\":7,\"t_ns\":1500000000,\"node\":3,\
             \"kind\":\"breaker_transition\",\"from\":\"closed\",\"to\":\"open\"}"
        );
    }

    #[test]
    fn histogram_json_contains_summary_and_sparse_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(10);
        h.record(10);
        h.record(1000);
        let json = h.to_json();
        assert!(json.starts_with("{\"count\":3,\"sum_ns\":1020,\"min_ns\":10,\"max_ns\":1000"));
        assert!(
            json.contains("[10,2]"),
            "bucket 10 holds two values: {json}"
        );
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn events_json_array() {
        let events = vec![
            Event {
                seq: 0,
                at: SimTime::ZERO,
                node: None,
                kind: EventKind::MembershipCommitted { members: 4 },
            },
            Event {
                seq: 1,
                at: SimTime::from_secs(1),
                node: Some(NodeId(1)),
                kind: EventKind::Probe {
                    outcome: ProbeClass::Lost,
                },
            },
        ];
        let mut s = String::new();
        write_events_json(&mut s, &events);
        assert!(s.starts_with('['));
        assert!(s.ends_with(']'));
        assert!(s.contains("\"members\":4"));
        assert!(s.contains("\"outcome\":\"lost\""));
    }
}
