//! Deterministic random number generation.
//!
//! Every stochastic component of the simulation (arrivals, popularity
//! sampling, service times) draws from a [`DetRng`]: a SplitMix64-seeded
//! xoshiro256**-style generator that can be *split* into independent named
//! streams. Splitting gives each component its own stream so that adding a
//! new consumer of randomness does not perturb the draws seen by existing
//! components — a standard trick for reproducible discrete-event simulation.

use rand::{Error, RngCore, SeedableRng};

/// Deterministic, splittable PRNG (xoshiro256** core, SplitMix64 seeding).
///
/// Implements [`rand::RngCore`] so it composes with `rand`/`rand_distr`
/// distributions.
///
/// # Example
///
/// ```
/// use elmem_util::DetRng;
/// use rand::Rng;
///
/// let mut a = DetRng::seed(42);
/// let mut b = DetRng::seed(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
///
/// // Named sub-streams are independent of the parent's future draws.
/// let mut arrivals = a.split("arrivals");
/// let mut sizes = a.split("sizes");
/// assert_ne!(arrivals.gen::<u64>(), sizes.gen::<u64>());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

/// SplitMix64 step; used for seeding and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derives an independent sub-stream identified by `name`.
    ///
    /// The derivation hashes the stream name together with the parent state
    /// *without advancing* the parent, so the set of split streams is stable
    /// under reordering of subsequent draws from the parent.
    pub fn split(&self, name: &str) -> DetRng {
        let mut h: u64 = 0xcbf29ce484222325; // FNV offset basis
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        // Mix the parent state in so different parents give different streams.
        let mut sm = h ^ self.s[0].rotate_left(17) ^ self.s[2].rotate_left(43);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derives an independent sub-stream identified by an integer (e.g. a
    /// node id), for when streams are created in a loop.
    pub fn split_index(&self, index: u64) -> DetRng {
        let mut sm = index.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(31)
            ^ self.s[1]
            ^ self.s[3].rotate_left(13);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        // xoshiro256**
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift with rejection for exact uniformity.
        loop {
            let x = self.next();
            let m = (x as u128) * (bound as u128);
            let l = m as u64;
            if l >= bound || l >= l.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Exponential variate with the given rate (events per unit).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    #[inline]
    pub fn next_exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0 && rate.is_finite(), "invalid rate: {rate}");
        let u = 1.0 - self.next_f64(); // in (0, 1]
        -u.ln() / rate
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for DetRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        DetRng::seed(u64::from_le_bytes(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed(1);
        let mut b = DetRng::seed(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn split_is_stable_and_independent() {
        let parent = DetRng::seed(99);
        let mut s1 = parent.split("arrivals");
        let mut s2 = parent.split("arrivals");
        assert_eq!(s1.next_u64(), s2.next_u64());
        let mut other = parent.split("sizes");
        assert_ne!(s1.next_u64(), other.next_u64());
    }

    #[test]
    fn split_index_streams_differ() {
        let parent = DetRng::seed(5);
        let mut a = parent.split_index(0);
        let mut b = parent.split_index(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn split_does_not_advance_parent() {
        let mut p1 = DetRng::seed(3);
        let mut p2 = DetRng::seed(3);
        let _ = p1.split("x");
        assert_eq!(p1.next_u64(), p2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::seed(11);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut r = DetRng::seed(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut r = DetRng::seed(17);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = r.next_below(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic]
    fn next_below_zero_panics() {
        DetRng::seed(0).next_below(0);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = DetRng::seed(19);
        let rate = 4.0;
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.next_exp(rate)).sum();
        let mean = sum / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn rng_core_fill_bytes_fills_everything() {
        let mut r = DetRng::seed(23);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // With 13 random bytes, all-zero is essentially impossible.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_with_rand_traits() {
        let mut r = DetRng::seed(29);
        let x: f64 = r.gen_range(0.0..10.0);
        assert!((0.0..10.0).contains(&x));
    }
}
