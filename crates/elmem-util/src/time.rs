//! Simulated time.
//!
//! The whole reproduction runs on a virtual clock: [`SimTime`] is a number of
//! nanoseconds since simulation start. Using a newtype (rather than
//! `std::time::Duration`) keeps arithmetic explicit, `Copy`, and trivially
//! serializable, and prevents accidental mixing with wall-clock time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) simulated time, in nanoseconds.
///
/// `SimTime` is used both as an instant (nanoseconds since simulation start)
/// and as a duration; the arithmetic is the same and the simulation never
/// needs negative time.
///
/// # Example
///
/// ```
/// use elmem_util::SimTime;
///
/// let t = SimTime::from_millis(1500);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// assert_eq!(t + SimTime::from_millis(500), SimTime::from_secs(2));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The zero instant (simulation start).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time: {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds (truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction: returns `ZERO` instead of underflowing.
    ///
    /// ```
    /// use elmem_util::SimTime;
    /// assert_eq!(SimTime::from_secs(1).saturating_sub(SimTime::from_secs(2)), SimTime::ZERO);
    /// ```
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Multiplies the time span by a non-negative float (for scaling service
    /// times by load factors).
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or not finite.
    pub fn mul_f64(self, f: f64) -> SimTime {
        assert!(f.is_finite() && f >= 0.0, "invalid factor: {f}");
        SimTime((self.0 as f64 * f).round() as u64)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_secs(), 3);
        assert_eq!(SimTime::from_millis(250).as_millis(), 250);
        assert_eq!(SimTime::from_micros(9).as_micros(), 9);
        assert_eq!(SimTime::from_nanos(17).as_nanos(), 17);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(2);
        let b = SimTime::from_millis(500);
        assert_eq!((a + b).as_millis(), 2500);
        assert_eq!((a - b).as_millis(), 1500);
        assert_eq!((b * 4).as_secs(), 2);
        assert_eq!((a / 2).as_secs(), 1);
    }

    #[test]
    fn saturating_sub_clamps_to_zero() {
        assert_eq!(
            SimTime::from_millis(1).saturating_sub(SimTime::from_secs(1)),
            SimTime::ZERO
        );
    }

    #[test]
    fn from_secs_f64() {
        assert_eq!(SimTime::from_secs_f64(0.001), SimTime::from_millis(1));
        assert_eq!(SimTime::from_secs_f64(2.5).as_millis(), 2500);
    }

    #[test]
    #[should_panic]
    fn from_secs_f64_rejects_negative() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn mul_f64_scales() {
        assert_eq!(SimTime::from_secs(2).mul_f64(1.5).as_millis(), 3000);
        assert_eq!(SimTime::from_secs(2).mul_f64(0.0), SimTime::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_secs(1).to_string(), "1.000s");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_nanos(7).to_string(), "7ns");
    }

    #[test]
    fn display_nonempty_for_zero() {
        assert!(!SimTime::ZERO.to_string().is_empty());
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX.checked_add(SimTime(1)).is_none());
        assert_eq!(SimTime(1).checked_add(SimTime(2)), Some(SimTime(3)));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_millis(999) < SimTime::from_secs(1));
    }
}
