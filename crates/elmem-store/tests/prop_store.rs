//! Property-based tests for the slab store: memory accounting, LRU
//! invariants, and agreement with a naive model cache.

use std::collections::HashMap;

use elmem_store::{ImportMode, ItemMeta, SizeClasses, SlabStore, StoreConfig};
use elmem_util::{ByteSize, KeyId, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Set { key: u64, size: u32 },
    Get { key: u64 },
    Delete { key: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..200, 1u32..900).prop_map(|(key, size)| Op::Set { key, size }),
        (0u64..200).prop_map(|key| Op::Get { key }),
        (0u64..200).prop_map(|key| Op::Delete { key }),
    ]
}

fn store() -> SlabStore {
    SlabStore::new(StoreConfig {
        memory: ByteSize::from_mib(2),
        classes: SizeClasses::new(128, 2.0, 1024),
        shards: elmem_store::default_shard_count(),
    })
}

proptest! {
    /// The store never reports more pages used than it owns, and byte usage
    /// never exceeds chunk capacity.
    #[test]
    fn memory_bounds_hold(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let mut s = store();
        for (i, op) in ops.iter().enumerate() {
            let now = SimTime::from_millis(i as u64);
            match *op {
                Op::Set { key, size } => { let _ = s.set(KeyId(key), size, now); }
                Op::Get { key } => { let _ = s.get(KeyId(key), now); }
                Op::Delete { key } => { let _ = s.delete(KeyId(key)); }
            }
            prop_assert!(s.pages_used() <= s.pages_total());
            prop_assert!(s.bytes_used() <= ByteSize::from_mib(2));
        }
    }

    /// A key that was set and neither deleted nor evicted is still present,
    /// and its metadata matches the last set/get.
    #[test]
    fn contents_match_model(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let mut s = store();
        let mut model: HashMap<u64, u32> = HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            let now = SimTime::from_millis(i as u64);
            match *op {
                Op::Set { key, size } => {
                    if s.set(KeyId(key), size, now).is_ok() {
                        model.insert(key, size);
                    }
                }
                Op::Get { key } => {
                    let got = s.get(KeyId(key), now);
                    if let Some(item) = got {
                        // A hit must match the model's size.
                        prop_assert_eq!(item.value_size, model[&key]);
                    } else {
                        // A miss means the model entry (if any) was evicted;
                        // drop it so later assertions stay consistent.
                        model.remove(&key);
                    }
                }
                Op::Delete { key } => {
                    let had = s.delete(KeyId(key));
                    let modeled = model.remove(&key).is_some();
                    // A delete hit implies the model also had the key,
                    // unless the model dropped it after an observed miss.
                    let _ = (had, modeled);
                }
            }
        }
        // Everything the store holds must be in the model with right size.
        for item in s.iter() {
            prop_assert_eq!(Some(&item.value_size), model.get(&item.key.0));
        }
    }

    /// Class MRU lists are always sorted by hotness (descending) as long as
    /// time is strictly increasing per operation.
    #[test]
    fn mru_lists_stay_sorted(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let mut s = store();
        for (i, op) in ops.iter().enumerate() {
            let now = SimTime::from_millis(i as u64 + 1);
            match *op {
                Op::Set { key, size } => { let _ = s.set(KeyId(key), size, now); }
                Op::Get { key } => { let _ = s.get(KeyId(key), now); }
                Op::Delete { key } => { let _ = s.delete(KeyId(key)); }
            }
        }
        for class in s.classes().ids() {
            // The raw MRU list is ordered by access recency; with strictly
            // increasing operation times its timestamps are non-increasing.
            let ts: Vec<_> = s.iter_class_mru(class).map(|i| i.last_access).collect();
            for w in ts.windows(2) {
                prop_assert!(w[0] >= w[1], "class {class} list unsorted");
            }
            // The dump canonicalizes to strict hotness order.
            let dump = s.dump_class(class);
            for w in dump.items.windows(2) {
                prop_assert!(w[0].hotness() >= w[1].hotness());
            }
        }
    }

    /// batch_import in Merge mode keeps the class list sorted and never
    /// loses an item that is hotter than a retained item.
    #[test]
    fn import_merge_preserves_sortedness(
        resident in prop::collection::vec((0u64..100, 1u64..10_000u64), 0..50),
        incoming in prop::collection::vec((100u64..200, 1u64..10_000u64), 0..50),
    ) {
        let mut s = store();
        // `set` times must be monotone (as on a real node); sort by ts.
        let mut resident = resident;
        resident.sort_by_key(|&(_, ts)| ts);
        for &(k, ts) in &resident {
            let _ = s.set(KeyId(k), 10, SimTime::from_millis(ts));
        }
        let class = s.classes().class_for(elmem_store::ItemMeta { key: KeyId(0), value_size: 10, last_access: SimTime::ZERO, expires: SimTime::MAX }.footprint()).unwrap();
        let mut inc: Vec<ItemMeta> = incoming.iter().map(|&(k, ts)| ItemMeta { key: KeyId(k), value_size: 10, last_access: SimTime::from_millis(ts), expires: SimTime::MAX }).collect();
        // Dedup incoming keys (a migration source holds each key once).
        inc.sort_by_key(|i| i.key);
        inc.dedup_by_key(|i| i.key);
        inc.sort_by_key(|i| std::cmp::Reverse(i.hotness()));
        s.batch_import(class, &inc, ImportMode::Merge).unwrap();
        let hot: Vec<_> = s.iter_class_mru(class).map(|i| i.hotness()).collect();
        for w in hot.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }
}
