//! Memcached command-surface tests: `add`, `replace`, `cas`, `peek_live`.

use elmem_store::{default_shard_count, SizeClasses, SlabStore, StoreConfig};
use elmem_util::{ByteSize, KeyId, SimTime};

fn store() -> SlabStore {
    SlabStore::new(StoreConfig {
        memory: ByteSize::from_mib(2),
        classes: SizeClasses::new(128, 2.0, 1024),
        shards: default_shard_count(),
    })
}

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

#[test]
fn add_stores_only_when_absent() {
    let mut s = store();
    assert!(s.add(KeyId(1), 10, t(1)).unwrap());
    assert!(!s.add(KeyId(1), 99, t(2)).unwrap(), "second add must fail");
    assert_eq!(s.peek(KeyId(1)).unwrap().value_size, 10);
}

#[test]
fn add_succeeds_over_expired_item() {
    let mut s = store();
    s.set_with_ttl(KeyId(1), 10, t(0), SimTime::from_secs(5))
        .unwrap();
    assert!(s.add(KeyId(1), 20, t(10)).unwrap(), "expired = absent");
    assert_eq!(s.peek(KeyId(1)).unwrap().value_size, 20);
}

#[test]
fn replace_stores_only_when_present() {
    let mut s = store();
    assert!(
        !s.replace(KeyId(1), 10, t(1)).unwrap(),
        "nothing to replace"
    );
    s.set(KeyId(1), 10, t(1)).unwrap();
    assert!(s.replace(KeyId(1), 20, t(2)).unwrap());
    assert_eq!(s.peek(KeyId(1)).unwrap().value_size, 20);
}

#[test]
fn replace_fails_on_expired_item() {
    let mut s = store();
    s.set_with_ttl(KeyId(1), 10, t(0), SimTime::from_secs(5))
        .unwrap();
    assert!(!s.replace(KeyId(1), 20, t(10)).unwrap());
}

#[test]
fn cas_succeeds_only_with_current_token() {
    let mut s = store();
    s.set(KeyId(1), 10, t(1)).unwrap();
    let token = s.peek(KeyId(1)).unwrap().last_access;
    // Stale token: another writer got in between.
    s.set(KeyId(1), 15, t(2)).unwrap();
    assert!(!s.cas(KeyId(1), 99, t(3), token).unwrap(), "stale CAS");
    // Fresh token works.
    let token = s.peek(KeyId(1)).unwrap().last_access;
    assert!(s.cas(KeyId(1), 20, t(4), token).unwrap());
    assert_eq!(s.peek(KeyId(1)).unwrap().value_size, 20);
}

#[test]
fn cas_on_missing_key_fails() {
    let mut s = store();
    assert!(!s.cas(KeyId(404), 10, t(1), t(0)).unwrap());
}

#[test]
fn cas_token_invalidated_by_get() {
    // A get refreshes last_access, so it also invalidates outstanding CAS
    // tokens (our token *is* the MRU timestamp).
    let mut s = store();
    s.set(KeyId(1), 10, t(1)).unwrap();
    let token = s.peek(KeyId(1)).unwrap().last_access;
    s.get(KeyId(1), t(2)).unwrap();
    assert!(!s.cas(KeyId(1), 20, t(3), token).unwrap());
}

#[test]
fn peek_live_respects_expiry_without_reclaiming() {
    let mut s = store();
    s.set_with_ttl(KeyId(1), 10, t(0), SimTime::from_secs(5))
        .unwrap();
    assert!(s.peek_live(KeyId(1), t(4)).is_some());
    assert!(s.peek_live(KeyId(1), t(6)).is_none());
    // The raw slot still exists until a get/crawl reclaims it.
    assert!(s.peek(KeyId(1)).is_some());
    assert_eq!(s.stats().expired, 0);
}

#[test]
fn command_mix_keeps_counters_consistent() {
    let mut s = store();
    for k in 0..50u64 {
        assert!(s.add(KeyId(k), 10, t(k)).unwrap());
    }
    for k in 0..25u64 {
        assert!(s.replace(KeyId(k), 20, t(100 + k)).unwrap());
    }
    assert_eq!(s.len(), 50);
    assert_eq!(s.stats().sets, 75);
}
