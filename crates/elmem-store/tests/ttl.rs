//! TTL / expiry semantics: lazy reclamation on access, the `touch`
//! command, `flush_all`, and the bounded LRU crawler.

use elmem_store::{default_shard_count, ItemMeta, SizeClasses, SlabStore, StoreConfig};
use elmem_util::{ByteSize, KeyId, SimTime};

fn store() -> SlabStore {
    SlabStore::new(StoreConfig {
        memory: ByteSize::from_mib(2),
        classes: SizeClasses::new(128, 2.0, 1024),
        shards: default_shard_count(),
    })
}

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

#[test]
fn expired_item_misses_and_is_reclaimed() {
    let mut s = store();
    s.set_with_ttl(KeyId(1), 10, t(0), SimTime::from_secs(10))
        .unwrap();
    assert!(s.get(KeyId(1), t(5)).is_some());
    assert!(s.get(KeyId(1), t(10)).is_none(), "dead exactly at exptime");
    assert!(!s.contains(KeyId(1)), "lazy reclamation removed the item");
    assert_eq!(s.stats().expired, 1);
    assert_eq!(s.stats().misses, 1);
}

#[test]
fn get_refreshes_recency_but_not_ttl() {
    let mut s = store();
    s.set_with_ttl(KeyId(1), 10, t(0), SimTime::from_secs(10))
        .unwrap();
    s.get(KeyId(1), t(9)).unwrap();
    assert!(s.get(KeyId(1), t(11)).is_none(), "get must not extend TTL");
}

#[test]
fn touch_extends_ttl_and_moves_to_front() {
    let mut s = store();
    s.set(KeyId(0), 10, t(0)).unwrap();
    s.set_with_ttl(KeyId(1), 10, t(0), SimTime::from_secs(10))
        .unwrap();
    let touched = s.touch(KeyId(1), t(5), SimTime::from_secs(100)).unwrap();
    assert_eq!(touched.expires, t(105));
    assert!(s.get(KeyId(1), t(50)).is_some(), "TTL extended");
    // Touch counts as an access: key 1 is now hotter than key 0.
    let class = s
        .classes()
        .class_for(ItemMeta::new(KeyId(0), 10, t(0)).footprint())
        .unwrap();
    let first = s.iter_class_mru(class).next().unwrap();
    assert_eq!(first.key, KeyId(1));
}

#[test]
fn touch_on_expired_item_is_none() {
    let mut s = store();
    s.set_with_ttl(KeyId(1), 10, t(0), SimTime::from_secs(5))
        .unwrap();
    assert!(s.touch(KeyId(1), t(6), SimTime::from_secs(100)).is_none());
    assert!(!s.contains(KeyId(1)));
}

#[test]
fn touch_missing_key_is_none() {
    let mut s = store();
    assert!(s.touch(KeyId(404), t(1), SimTime::from_secs(1)).is_none());
}

#[test]
fn set_overwrites_ttl() {
    let mut s = store();
    s.set_with_ttl(KeyId(1), 10, t(0), SimTime::from_secs(5))
        .unwrap();
    s.set(KeyId(1), 10, t(1)).unwrap(); // plain set: never expires
    assert!(s.get(KeyId(1), t(1000)).is_some());
}

#[test]
fn flush_all_clears_but_keeps_pages() {
    let mut s = store();
    for k in 0..100 {
        s.set(KeyId(k), 10, t(k)).unwrap();
    }
    let pages = s.pages_used();
    assert!(pages > 0);
    s.flush_all();
    assert!(s.is_empty());
    assert_eq!(s.pages_used(), pages, "pages are never returned");
    assert_eq!(s.stats().deletes, 100);
    // The store remains fully usable.
    s.set(KeyId(7), 10, t(1000)).unwrap();
    assert!(s.contains(KeyId(7)));
}

#[test]
fn crawler_reclaims_expired_within_budget() {
    let mut s = store();
    for k in 0..50 {
        s.set_with_ttl(KeyId(k), 10, t(0), SimTime::from_secs(10))
            .unwrap();
    }
    for k in 50..100 {
        s.set(KeyId(k), 10, t(0)).unwrap();
    }
    // All TTL'd items are dead at t=20, but the budget limits one pass.
    let reclaimed_first = s.crawl_expired(t(20), 30);
    assert!(reclaimed_first <= 30);
    let reclaimed_second = s.crawl_expired(t(20), 1000);
    assert_eq!(reclaimed_first + reclaimed_second, 50);
    assert_eq!(s.len(), 50);
    assert_eq!(s.stats().expired, 50);
    // Non-TTL items survived.
    for k in 50..100 {
        assert!(s.contains(KeyId(k)), "key {k} wrongly reclaimed");
    }
}

#[test]
fn crawler_noop_when_nothing_expired() {
    let mut s = store();
    for k in 0..20 {
        s.set(KeyId(k), 10, t(k)).unwrap();
    }
    assert_eq!(s.crawl_expired(t(100), 1000), 0);
    assert_eq!(s.len(), 20);
}

#[test]
fn expired_items_do_not_resurrect_via_import_collision() {
    let mut s = store();
    s.set_with_ttl(KeyId(1), 10, t(0), SimTime::from_secs(5))
        .unwrap();
    // After expiry, a new set must fully replace the old entry.
    assert!(s.get(KeyId(1), t(10)).is_none());
    s.set(KeyId(1), 20, t(11)).unwrap();
    let item = s.peek(KeyId(1)).unwrap();
    assert_eq!(item.value_size, 20);
    assert_eq!(item.expires, SimTime::MAX);
}

#[test]
fn item_meta_expiry_helpers() {
    let m = ItemMeta::with_ttl(KeyId(1), 10, t(100), SimTime::from_secs(50));
    assert!(!m.is_expired(t(149)));
    assert!(m.is_expired(t(150)));
    let never = ItemMeta::new(KeyId(1), 10, t(100));
    assert!(!never.is_expired(SimTime::MAX - SimTime(1)));
}
