//! Slab size classes.
//!
//! Memcached partitions items by size: class *i* stores items of up to
//! `chunk_size(i)` bytes, where chunk sizes grow geometrically from a
//! minimum (default 96 bytes, growth factor 1.25) up to the page size.

use elmem_util::ByteSize;
use serde::{Deserialize, Serialize};

/// Index of a slab size class within a store.
///
/// ```
/// use elmem_store::ClassId;
/// assert_eq!(ClassId(3).0, 3);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClassId(pub u16);

impl std::fmt::Display for ClassId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "class{}", self.0)
    }
}

/// The ladder of chunk sizes (Memcached's `-f` growth factor and `-n`
/// minimum chunk size).
///
/// # Example
///
/// ```
/// use elmem_store::SizeClasses;
///
/// let classes = SizeClasses::memcached_default();
/// let cid = classes.class_for(100).unwrap();
/// assert!(classes.chunk_size(cid) >= 100);
/// // Items larger than the largest chunk are rejected.
/// assert!(classes.class_for(2 * 1024 * 1024).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizeClasses {
    /// Chunk size of each class, strictly increasing.
    chunk_sizes: Vec<u64>,
}

impl SizeClasses {
    /// Memcached's default ladder: minimum chunk 96 bytes, growth factor
    /// 1.25, capped at the 1 MB page size.
    pub fn memcached_default() -> Self {
        Self::new(96, 1.25, ByteSize::PAGE.as_u64())
    }

    /// Builds a ladder starting at `min_chunk` bytes, multiplying by
    /// `growth_factor`, up to `max_chunk` bytes (the final class is exactly
    /// `max_chunk` if the ladder does not land on it).
    ///
    /// # Panics
    ///
    /// Panics if `min_chunk == 0`, `growth_factor <= 1.0`, or
    /// `max_chunk < min_chunk`.
    pub fn new(min_chunk: u64, growth_factor: f64, max_chunk: u64) -> Self {
        assert!(min_chunk > 0, "min_chunk must be positive");
        assert!(growth_factor > 1.0, "growth factor must exceed 1.0");
        assert!(max_chunk >= min_chunk, "max_chunk below min_chunk");
        let mut chunk_sizes = Vec::new();
        let mut size = min_chunk as f64;
        while (size as u64) < max_chunk {
            // Memcached aligns chunk sizes to 8 bytes.
            let aligned = ((size as u64) + 7) & !7;
            if chunk_sizes.last() != Some(&aligned) {
                chunk_sizes.push(aligned);
            }
            size *= growth_factor;
        }
        if chunk_sizes.last() != Some(&max_chunk) {
            chunk_sizes.push(max_chunk);
        }
        SizeClasses { chunk_sizes }
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.chunk_sizes.len()
    }

    /// Whether the ladder is empty (never true for a constructed ladder).
    pub fn is_empty(&self) -> bool {
        self.chunk_sizes.is_empty()
    }

    /// The smallest class whose chunk fits an item of `footprint` bytes,
    /// or `None` if the item exceeds the largest chunk.
    pub fn class_for(&self, footprint: u64) -> Option<ClassId> {
        let idx = self.chunk_sizes.partition_point(|&c| c < footprint);
        (idx < self.chunk_sizes.len()).then_some(ClassId(idx as u16))
    }

    /// Chunk size of a class, in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn chunk_size(&self, id: ClassId) -> u64 {
        self.chunk_sizes[id.0 as usize]
    }

    /// Number of chunks a 1 MB page yields in this class.
    pub fn chunks_per_page(&self, id: ClassId) -> u64 {
        (ByteSize::PAGE.as_u64() / self.chunk_size(id)).max(1)
    }

    /// Iterates over all class ids.
    pub fn ids(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.chunk_sizes.len() as u16).map(ClassId)
    }

    /// The largest chunk size, in bytes.
    pub fn max_chunk(&self) -> u64 {
        *self.chunk_sizes.last().expect("ladder is never empty")
    }
}

impl Default for SizeClasses {
    fn default() -> Self {
        Self::memcached_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_strictly_increasing() {
        let c = SizeClasses::memcached_default();
        for w in c.chunk_sizes.windows(2) {
            assert!(w[0] < w[1], "ladder not increasing: {:?}", w);
        }
    }

    #[test]
    fn ladder_is_eight_byte_aligned_except_cap() {
        let c = SizeClasses::memcached_default();
        for (i, &s) in c.chunk_sizes.iter().enumerate() {
            if i + 1 < c.chunk_sizes.len() {
                assert_eq!(s % 8, 0, "class {i} size {s} unaligned");
            }
        }
    }

    #[test]
    fn class_for_picks_smallest_fit() {
        let c = SizeClasses::new(100, 2.0, 1000);
        // Ladder: 104, 200, 400, 800, 1000
        assert_eq!(c.chunk_size(c.class_for(1).unwrap()), 104);
        assert_eq!(c.chunk_size(c.class_for(104).unwrap()), 104);
        assert_eq!(c.chunk_size(c.class_for(105).unwrap()), 200);
        assert_eq!(c.chunk_size(c.class_for(1000).unwrap()), 1000);
        assert_eq!(c.class_for(1001), None);
    }

    #[test]
    fn default_covers_page_sized_items() {
        let c = SizeClasses::memcached_default();
        assert_eq!(c.max_chunk(), ByteSize::PAGE.as_u64());
        assert!(c.class_for(ByteSize::PAGE.as_u64()).is_some());
    }

    #[test]
    fn chunks_per_page() {
        let c = SizeClasses::new(1024, 2.0, ByteSize::PAGE.as_u64());
        let first = c.class_for(1).unwrap();
        assert_eq!(c.chunks_per_page(first), 1024);
        let last = ClassId((c.len() - 1) as u16);
        assert_eq!(c.chunks_per_page(last), 1);
    }

    #[test]
    fn ids_iterates_all() {
        let c = SizeClasses::new(100, 4.0, 1600);
        let ids: Vec<ClassId> = c.ids().collect();
        assert_eq!(ids.len(), c.len());
        assert_eq!(ids[0], ClassId(0));
    }

    #[test]
    #[should_panic]
    fn zero_min_chunk_rejected() {
        let _ = SizeClasses::new(0, 1.25, 100);
    }

    #[test]
    #[should_panic]
    fn growth_factor_must_exceed_one() {
        let _ = SizeClasses::new(96, 1.0, 100);
    }

    #[test]
    fn display_class_id() {
        assert_eq!(ClassId(4).to_string(), "class4");
    }
}
