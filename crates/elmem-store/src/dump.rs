//! Metadata dumps: the "timestamp dump" modification ElMem adds to
//! Memcached (§V-A1), used in migration phase 1 (§III-D1).

use elmem_util::ByteSize;
use serde::{Deserialize, Serialize};

use crate::classes::ClassId;
use crate::item::{ItemMeta, KEY_BYTES, TIMESTAMP_BYTES};

/// MRU-ordered metadata of one slab class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassDump {
    /// Which class this dump describes.
    pub class: ClassId,
    /// Items in MRU (hottest-first) order.
    pub items: Vec<ItemMeta>,
}

impl ClassDump {
    /// Wraps an MRU-ordered item list, canonicalizing the order to strictly
    /// descending [hotness](crate::Hotness).
    ///
    /// The store's MRU list is ordered by *access recency*; items touched in
    /// the same instant may appear in either order there. Dumps are the
    /// interchange format between nodes, so they re-sort by full hotness
    /// (timestamp + tie-break). The list is already nearly sorted, making
    /// this cheap in practice.
    pub fn new(class: ClassId, mut items: Vec<ItemMeta>) -> Self {
        items.sort_by_key(|i| std::cmp::Reverse(i.hotness()));
        ClassDump { class, items }
    }

    /// Number of items in the dump.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the dump holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Bytes this dump occupies on the wire during the metadata-transfer
    /// phase: key (11 B) + timestamp (10 B) per item — values are *not*
    /// shipped in phase 1 (§III-D1).
    pub fn wire_bytes(&self) -> ByteSize {
        ByteSize((KEY_BYTES + TIMESTAMP_BYTES) * self.items.len() as u64)
    }
}

/// Metadata dump of a whole store (all non-empty classes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MetadataDump {
    /// Per-class dumps.
    pub classes: Vec<ClassDump>,
}

impl MetadataDump {
    /// Wraps a set of per-class dumps.
    pub fn new(classes: Vec<ClassDump>) -> Self {
        MetadataDump { classes }
    }

    /// Total items across all classes.
    pub fn total_items(&self) -> u64 {
        self.classes.iter().map(|c| c.items.len() as u64).sum()
    }

    /// Total wire bytes of the metadata transfer.
    pub fn wire_bytes(&self) -> ByteSize {
        self.classes.iter().map(|c| c.wire_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmem_util::{KeyId, SimTime};

    fn item(k: u64, ts: u64) -> ItemMeta {
        ItemMeta {
            key: KeyId(k),
            value_size: 10,
            last_access: SimTime::from_secs(ts),
            expires: SimTime::MAX,
        }
    }

    #[test]
    fn wire_bytes_is_21_per_item() {
        let d = ClassDump::new(ClassId(0), vec![item(1, 1), item(2, 2)]);
        assert_eq!(d.wire_bytes().as_u64(), 42);
    }

    #[test]
    fn metadata_dump_totals() {
        let d = MetadataDump::new(vec![
            ClassDump::new(ClassId(0), vec![item(1, 1)]),
            ClassDump::new(ClassId(1), vec![item(2, 2), item(3, 3)]),
        ]);
        assert_eq!(d.total_items(), 3);
        assert_eq!(d.wire_bytes().as_u64(), 63);
    }

    #[test]
    fn empty_dump() {
        let d = MetadataDump::default();
        assert_eq!(d.total_items(), 0);
        assert_eq!(d.wire_bytes(), ByteSize::ZERO);
        assert!(ClassDump::new(ClassId(0), vec![]).is_empty());
    }
}
