//! Metadata dumps: the "timestamp dump" modification ElMem adds to
//! Memcached (§V-A1), used in migration phase 1 (§III-D1).

use elmem_util::ByteSize;
use serde::{Deserialize, Serialize};

use crate::classes::ClassId;
use crate::item::{ItemMeta, KEY_BYTES, TIMESTAMP_BYTES};

/// MRU-ordered metadata of one slab class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassDump {
    /// Which class this dump describes.
    pub class: ClassId,
    /// Items in MRU (hottest-first) order.
    pub items: Vec<ItemMeta>,
}

impl ClassDump {
    /// Wraps an MRU-ordered item list, canonicalizing the order to strictly
    /// descending [hotness](crate::Hotness).
    ///
    /// The store's MRU list is ordered by *access recency*; items touched in
    /// the same instant may appear in either order there. Dumps are the
    /// interchange format between nodes, so they re-sort by full hotness
    /// (timestamp + tie-break). The list is already sorted — or nearly so —
    /// in practice, so canonicalization detects the sorted run first
    /// (one O(n) comparison pass, no allocation, the common case) and falls
    /// back to a bounded insertion fixup for a handful of same-instant
    /// inversions; only a genuinely disordered list pays the full sort.
    ///
    /// Hotness is a total order and keys within a class are distinct, so
    /// every path produces the same unique descending order — callers can
    /// not observe which one ran.
    pub fn new(class: ClassId, mut items: Vec<ItemMeta>) -> Self {
        canonicalize(&mut items);
        ClassDump { class, items }
    }

    /// Number of items in the dump.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the dump holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Bytes this dump occupies on the wire during the metadata-transfer
    /// phase: key (11 B) + timestamp (10 B) per item — values are *not*
    /// shipped in phase 1 (§III-D1).
    pub fn wire_bytes(&self) -> ByteSize {
        ByteSize((KEY_BYTES + TIMESTAMP_BYTES) * self.items.len() as u64)
    }
}

/// Adjacent inversions tolerated before the fixup abandons insertion
/// sifting for a full sort. Same-instant multi-get accesses produce a few
/// local inversions per dump; a list with more than this many is treated
/// as unsorted.
const MAX_INVERSION_FIXUPS: usize = 64;

/// Sorts `items` into descending hotness, exploiting near-sortedness.
///
/// One comparison pass finds the adjacent inversions. None (the common
/// case: MRU lists are hotness-sorted under normal operation) — done, no
/// writes at all. At most [`MAX_INVERSION_FIXUPS`] — insertion-sift from
/// the first inversion onward, O(n + k·d) for k displaced items of travel
/// distance d. More — full pattern-defeating sort.
fn canonicalize(items: &mut [ItemMeta]) {
    let mut first_inversion = None;
    let mut inversions = 0usize;
    for i in 1..items.len() {
        if items[i - 1].hotness() < items[i].hotness() {
            inversions += 1;
            if first_inversion.is_none() {
                first_inversion = Some(i);
            }
            if inversions > MAX_INVERSION_FIXUPS {
                items.sort_unstable_by_key(|i| std::cmp::Reverse(i.hotness()));
                return;
            }
        }
    }
    let Some(start) = first_inversion else {
        return; // already sorted
    };
    for i in start..items.len() {
        let mut j = i;
        while j > 0 && items[j - 1].hotness() < items[j].hotness() {
            items.swap(j - 1, j);
            j -= 1;
        }
    }
}

/// Metadata dump of a whole store (all non-empty classes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MetadataDump {
    /// Per-class dumps.
    pub classes: Vec<ClassDump>,
}

impl MetadataDump {
    /// Wraps a set of per-class dumps.
    pub fn new(classes: Vec<ClassDump>) -> Self {
        MetadataDump { classes }
    }

    /// Total items across all classes.
    pub fn total_items(&self) -> u64 {
        self.classes.iter().map(|c| c.items.len() as u64).sum()
    }

    /// Total wire bytes of the metadata transfer.
    pub fn wire_bytes(&self) -> ByteSize {
        self.classes.iter().map(|c| c.wire_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmem_util::{KeyId, SimTime};

    fn item(k: u64, ts: u64) -> ItemMeta {
        ItemMeta {
            key: KeyId(k),
            value_size: 10,
            last_access: SimTime::from_secs(ts),
            expires: SimTime::MAX,
        }
    }

    #[test]
    fn wire_bytes_is_21_per_item() {
        let d = ClassDump::new(ClassId(0), vec![item(1, 1), item(2, 2)]);
        assert_eq!(d.wire_bytes().as_u64(), 42);
    }

    #[test]
    fn metadata_dump_totals() {
        let d = MetadataDump::new(vec![
            ClassDump::new(ClassId(0), vec![item(1, 1)]),
            ClassDump::new(ClassId(1), vec![item(2, 2), item(3, 3)]),
        ]);
        assert_eq!(d.total_items(), 3);
        assert_eq!(d.wire_bytes().as_u64(), 63);
    }

    /// Reference canonical order: the full sort the fast paths must match.
    fn full_sort(mut items: Vec<ItemMeta>) -> Vec<ItemMeta> {
        items.sort_by_key(|i| std::cmp::Reverse(i.hotness()));
        items
    }

    #[test]
    fn sorted_input_is_untouched() {
        let items: Vec<ItemMeta> = (0..100).map(|k| item(k, 1000 - k)).collect();
        let d = ClassDump::new(ClassId(0), items.clone());
        assert_eq!(d.items, items, "descending input must pass through as-is");
    }

    #[test]
    fn few_inversions_fixed_by_insertion_path() {
        // Mostly descending with a handful of local swaps — the
        // same-instant multi-get pattern.
        let mut items: Vec<ItemMeta> = (0..200).map(|k| item(k, 2000 - k)).collect();
        items.swap(10, 11);
        items.swap(50, 51);
        items.swap(120, 121);
        let expect = full_sort(items.clone());
        assert_eq!(ClassDump::new(ClassId(0), items).items, expect);
    }

    #[test]
    fn long_distance_displacement_fixed() {
        // One very hot item buried at the tail: a single inversion whose
        // fixup must travel the whole list.
        let mut items: Vec<ItemMeta> = (0..100).map(|k| item(k, 1000 - k)).collect();
        items.push(item(999, 5000));
        let expect = full_sort(items.clone());
        let d = ClassDump::new(ClassId(0), items);
        assert_eq!(d.items, expect);
        assert_eq!(d.items[0].key.0, 999);
    }

    #[test]
    fn heavily_shuffled_falls_back_to_full_sort() {
        // Ascending input: every adjacent pair is an inversion, far past
        // the fixup budget.
        let items: Vec<ItemMeta> = (0..500).map(|k| item(k, k + 1)).collect();
        let expect = full_sort(items.clone());
        assert_eq!(ClassDump::new(ClassId(0), items).items, expect);
    }

    #[test]
    fn same_instant_ties_break_canonically() {
        // All items share a timestamp: order is decided purely by the
        // hotness tie-break, whatever order the MRU list had.
        let fwd: Vec<ItemMeta> = (0..50).map(|k| item(k, 7)).collect();
        let rev: Vec<ItemMeta> = (0..50).rev().map(|k| item(k, 7)).collect();
        let a = ClassDump::new(ClassId(0), fwd.clone());
        let b = ClassDump::new(ClassId(0), rev);
        assert_eq!(a.items, b.items, "canonical order is input-order-free");
        assert_eq!(a.items, full_sort(fwd));
    }

    #[test]
    fn empty_dump() {
        let d = MetadataDump::default();
        assert_eq!(d.total_items(), 0);
        assert_eq!(d.wire_bytes(), ByteSize::ZERO);
        assert!(ClassDump::new(ClassId(0), vec![]).is_empty());
    }
}
