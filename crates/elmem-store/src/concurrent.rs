//! The `Sync` serving facade over the sharded store: lock-per-shard
//! gets/sets for real threads.
//!
//! [`ConcurrentSlabStore`] wraps the same [`Shard`]s the serial
//! [`SlabStore`] drives, each behind its own `Mutex`, with the facade-level
//! accounting (LRU clock, per-class page/len budgets, op counters) held in
//! atomics. Operations on keys that route to distinct shards never touch
//! the same lock — the contended case is two threads hitting one shard, and
//! the uncontended fast path is one lock, one hash probe, one list splice.
//!
//! # Lock discipline (deadlock freedom)
//!
//! * The **fast path** (get / update / insert-with-free-capacity) holds
//!   exactly one shard lock and never blocks on anything else while
//!   holding it.
//! * The **slow path** (page grant or eviction) first *drops* its shard
//!   lock, then takes the global `alloc` lock, then re-locks its shard and
//!   re-runs the op. Only the unique alloc holder ever holds more than one
//!   shard lock at a time, so no lock cycle can form.
//!
//! # Equivalence to the serial facade
//!
//! Stamps are drawn from the shared LRU clock *inside* the shard lock, so
//! each shard list stays strictly stamp-descending even under real
//! threads — `into_serial().audit()` holds at any interleaving, which is
//! what the stress harness pins. Under a serialized driver (one op at a
//! time, any thread order) every op takes exactly the serial facade's
//! branches, so dumps, stats, and audits are byte-identical to
//! [`SlabStore`] — the property `tests/prop_store_sharding.rs` checks.
//! Under true concurrency the *eviction victim* is approximate (the tail
//! observed under the victim shard's lock), which is Memcached-faithful:
//! real memcached's LRU under contention is approximate too.
//!
//! Dump/import/rebalance/planning stay serial-only (convert with
//! [`into_serial`](ConcurrentSlabStore::into_serial) at a quiesce point) —
//! a documented non-goal of this facade, see DESIGN.md §14.

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Mutex;

use elmem_util::{ElmemError, KeyId, SimTime};

use crate::classes::{ClassId, SizeClasses};
use crate::item::{item_footprint, ItemMeta};
use crate::shard::{shard_of, Shard};
use crate::store::{ClassMeta, MedianCache, SlabStore, StoreConfig, StoreStats};

/// Bound on secure-capacity retries in the slow path: under contention a
/// freed chunk can be claimed by a racing thread before the freeing thread
/// re-claims it, so eviction retries a few times before reporting OOM.
/// Serialized drivers always succeed on the first or second attempt.
const MAX_ALLOC_RETRIES: usize = 8;

/// Facade-level accounting for one class, in atomics. `capacity` is
/// `pages × chunks_per_page`; it only ever grows while the facade is live
/// (page reassignment is serial-only), which is what makes the optimistic
/// chunk claim sound.
#[derive(Debug)]
struct ClassAtomics {
    chunks_per_page: u64,
    pages: AtomicU64,
    len: AtomicU64,
    pressure: AtomicU64,
    version: AtomicU64,
}

#[derive(Debug, Default)]
struct StatsAtomics {
    hits: AtomicU64,
    misses: AtomicU64,
    sets: AtomicU64,
    evictions: AtomicU64,
    deletes: AtomicU64,
    imported: AtomicU64,
    expired: AtomicU64,
}

impl StatsAtomics {
    fn from_stats(s: StoreStats) -> Self {
        StatsAtomics {
            hits: AtomicU64::new(s.hits),
            misses: AtomicU64::new(s.misses),
            sets: AtomicU64::new(s.sets),
            evictions: AtomicU64::new(s.evictions),
            deletes: AtomicU64::new(s.deletes),
            imported: AtomicU64::new(s.imported),
            expired: AtomicU64::new(s.expired),
        }
    }

    fn snapshot(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(SeqCst),
            misses: self.misses.load(SeqCst),
            sets: self.sets.load(SeqCst),
            evictions: self.evictions.load(SeqCst),
            deletes: self.deletes.load(SeqCst),
            imported: self.imported.load(SeqCst),
            expired: self.expired.load(SeqCst),
        }
    }
}

/// A `Sync` slab store for real-thread serving: the same shards as
/// [`SlabStore`], each behind its own lock. See the module docs for the
/// concurrency model and the serial-equivalence argument.
#[derive(Debug)]
pub struct ConcurrentSlabStore {
    classes: SizeClasses,
    n_shards: u32,
    shards: Vec<Mutex<Shard>>,
    class_state: Vec<ClassAtomics>,
    pages_total: u64,
    pages_used: AtomicU64,
    lru_clock: AtomicU64,
    stats: StatsAtomics,
    /// Serializes page grants and evictions (the slow path).
    alloc: Mutex<()>,
}

impl ConcurrentSlabStore {
    /// Creates an empty concurrent store.
    ///
    /// # Panics
    ///
    /// Panics if the configured memory is smaller than one page.
    pub fn new(config: StoreConfig) -> Self {
        Self::from_serial(SlabStore::new(config))
    }

    /// Wraps a serial store for concurrent serving (takes ownership: the
    /// two facades are views of the same shards, never live aliases).
    pub fn from_serial(store: SlabStore) -> Self {
        let SlabStore {
            classes,
            n_shards,
            shards,
            class_meta,
            pages_total,
            pages_used,
            lru_clock,
            stats,
        } = store;
        ConcurrentSlabStore {
            classes,
            n_shards,
            shards: shards.into_iter().map(Mutex::new).collect(),
            class_state: class_meta
                .iter()
                .map(|m| ClassAtomics {
                    chunks_per_page: m.chunks_per_page,
                    pages: AtomicU64::new(m.pages),
                    len: AtomicU64::new(m.len),
                    pressure: AtomicU64::new(m.pressure),
                    version: AtomicU64::new(m.version),
                })
                .collect(),
            pages_total,
            pages_used: AtomicU64::new(pages_used),
            lru_clock: AtomicU64::new(lru_clock),
            stats: StatsAtomics::from_stats(stats),
            alloc: Mutex::new(()),
        }
    }

    /// Unwraps back into the serial facade (the quiesce point for dumps,
    /// imports, rebalancing, audits, and migration planning).
    pub fn into_serial(self) -> SlabStore {
        SlabStore {
            classes: self.classes,
            n_shards: self.n_shards,
            shards: self
                .shards
                .into_iter()
                .map(|m| m.into_inner().expect("shard lock"))
                .collect(),
            class_meta: self
                .class_state
                .iter()
                .map(|c| ClassMeta {
                    chunks_per_page: c.chunks_per_page,
                    pages: c.pages.load(SeqCst),
                    len: c.len.load(SeqCst),
                    pressure: c.pressure.load(SeqCst),
                    version: c.version.load(SeqCst),
                    median: MedianCache::default(),
                })
                .collect(),
            pages_total: self.pages_total,
            pages_used: self.pages_used.load(SeqCst),
            lru_clock: self.lru_clock.load(SeqCst),
            stats: self.stats.snapshot(),
        }
    }

    /// The size-class ladder in use.
    pub fn classes(&self) -> &SizeClasses {
        &self.classes
    }

    /// Number of shards (= the maximum number of non-contending threads).
    pub fn shard_count(&self) -> usize {
        self.n_shards as usize
    }

    /// Total resident items (a racy-but-consistent sum of the class
    /// counters).
    pub fn len(&self) -> u64 {
        self.class_state.iter().map(|c| c.len.load(SeqCst)).sum()
    }

    /// Whether the store holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the operation counters.
    pub fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }

    fn next_seq(&self) -> u64 {
        // fetch_add's read-modify-write order makes stamps globally unique
        // and increasing; callers draw them *inside* a shard lock, so each
        // shard list stays strictly stamp-descending.
        self.lru_clock.fetch_add(1, SeqCst) + 1
    }

    fn lock_shard(&self, si: usize) -> std::sync::MutexGuard<'_, Shard> {
        self.shards[si].lock().expect("shard lock")
    }

    /// Looks up a key, refreshing its MRU position and timestamp on hit;
    /// expired items are lazily reclaimed as misses, exactly like
    /// [`SlabStore::get`].
    pub fn get(&self, key: KeyId, now: SimTime) -> Option<ItemMeta> {
        let si = shard_of(key, self.n_shards);
        let mut sh = self.lock_shard(si);
        match sh.index.get(&key).copied() {
            Some((class, idx)) => {
                if sh.item(class, idx).is_expired(now) {
                    self.remove_locked(&mut sh, key);
                    self.stats.expired.fetch_add(1, SeqCst);
                    self.stats.misses.fetch_add(1, SeqCst);
                    return None;
                }
                self.stats.hits.fetch_add(1, SeqCst);
                let seq = self.next_seq();
                self.class_state[class as usize]
                    .version
                    .fetch_add(1, SeqCst);
                let item = sh.relink_front(class, idx, seq);
                item.last_access = now;
                Some(*item)
            }
            None => {
                self.stats.misses.fetch_add(1, SeqCst);
                None
            }
        }
    }

    /// Looks up a key without disturbing MRU order or counters.
    pub fn peek(&self, key: KeyId) -> Option<ItemMeta> {
        let si = shard_of(key, self.n_shards);
        let sh = self.lock_shard(si);
        let (class, idx) = sh.index.get(&key).copied()?;
        sh.lists[class as usize].slots[idx as usize].item
    }

    /// Whether a key is resident.
    pub fn contains(&self, key: KeyId) -> bool {
        let si = shard_of(key, self.n_shards);
        self.lock_shard(si).index.contains_key(&key)
    }

    /// Inserts or updates a key, moving it to the MRU head.
    ///
    /// # Errors
    ///
    /// Same as [`SlabStore::set`].
    pub fn set(&self, key: KeyId, value_size: u32, now: SimTime) -> Result<(), ElmemError> {
        self.set_item(ItemMeta::new(key, value_size, now))
    }

    /// Inserts or updates a key with a time-to-live.
    ///
    /// # Errors
    ///
    /// Same as [`SlabStore::set`].
    pub fn set_with_ttl(
        &self,
        key: KeyId,
        value_size: u32,
        now: SimTime,
        ttl: SimTime,
    ) -> Result<(), ElmemError> {
        self.set_item(ItemMeta::with_ttl(key, value_size, now, ttl))
    }

    /// Refreshes a key's TTL and MRU position (Memcached `touch`),
    /// mirroring [`SlabStore::touch`]'s counters exactly.
    pub fn touch(&self, key: KeyId, now: SimTime, ttl: SimTime) -> Option<ItemMeta> {
        let si = shard_of(key, self.n_shards);
        let mut sh = self.lock_shard(si);
        match sh.index.get(&key).copied() {
            Some((class, idx)) => {
                if sh.item(class, idx).is_expired(now) {
                    self.remove_locked(&mut sh, key);
                    self.stats.expired.fetch_add(1, SeqCst);
                    self.stats.misses.fetch_add(1, SeqCst);
                    return None;
                }
                self.stats.hits.fetch_add(1, SeqCst);
                let seq = self.next_seq();
                self.class_state[class as usize]
                    .version
                    .fetch_add(1, SeqCst);
                let item = sh.relink_front(class, idx, seq);
                item.last_access = now;
                item.expires = now.checked_add(ttl).unwrap_or(SimTime::MAX);
                Some(*item)
            }
            None => {
                self.stats.misses.fetch_add(1, SeqCst);
                None
            }
        }
    }

    /// Removes a key; returns whether it was present.
    pub fn delete(&self, key: KeyId) -> bool {
        let si = shard_of(key, self.n_shards);
        let mut sh = self.lock_shard(si);
        let removed = self.remove_locked(&mut sh, key).is_some();
        if removed {
            self.stats.deletes.fetch_add(1, SeqCst);
        }
        removed
    }

    /// Removes `key` from the already-locked shard, maintaining the class
    /// counters.
    fn remove_locked(&self, sh: &mut Shard, key: KeyId) -> Option<ItemMeta> {
        let (class, item) = sh.remove(key)?;
        self.class_state[class as usize].len.fetch_sub(1, SeqCst);
        self.class_state[class as usize]
            .version
            .fetch_add(1, SeqCst);
        Some(item)
    }

    /// Optimistically claims one chunk of `class`'s capacity: increments
    /// the class `len` iff it is below `pages × chunks_per_page`. Sound
    /// because capacity never shrinks while this facade is live.
    fn try_claim_chunk(&self, ci: usize) -> bool {
        let cs = &self.class_state[ci];
        let capacity = cs.pages.load(SeqCst) * cs.chunks_per_page;
        cs.len
            .fetch_update(SeqCst, SeqCst, |l| (l < capacity).then_some(l + 1))
            .is_ok()
    }

    fn set_item(&self, new_item: ItemMeta) -> Result<(), ElmemError> {
        let footprint = item_footprint(new_item.value_size);
        let class = self
            .classes
            .class_for(footprint)
            .ok_or(ElmemError::ItemTooLarge {
                item_bytes: footprint,
                max_chunk_bytes: self.classes.max_chunk(),
            })?;
        let si = shard_of(new_item.key, self.n_shards);
        // Fast path: one shard lock, no global coordination.
        {
            let mut sh = self.lock_shard(si);
            if self.try_update_in_place(&mut sh, class, new_item, footprint) {
                return Ok(());
            }
            if self.try_claim_chunk(class.0 as usize) {
                self.insert_claimed(&mut sh, class, new_item);
                return Ok(());
            }
        }
        // Slow path: drop the shard lock (see module docs), serialize on
        // the alloc lock, re-lock, and re-run — the key may have been
        // inserted or capacity freed in the window.
        let _alloc = self.alloc.lock().expect("alloc lock");
        let mut sh = self.lock_shard(si);
        if self.try_update_in_place(&mut sh, class, new_item, footprint) {
            return Ok(());
        }
        self.secure_chunk_locked(class, si, &mut sh)?;
        self.insert_claimed(&mut sh, class, new_item);
        Ok(())
    }

    /// Handles the key-already-resident cases. Returns `true` if the set
    /// completed (same-class in-place update); on a size-class change the
    /// old entry is removed (exactly the serial facade's order) and `false`
    /// is returned so the caller inserts fresh.
    fn try_update_in_place(
        &self,
        sh: &mut Shard,
        class: ClassId,
        new_item: ItemMeta,
        footprint: u64,
    ) -> bool {
        let Some((old_class, idx)) = sh.index.get(&new_item.key).copied() else {
            return false;
        };
        if old_class != class.0 {
            self.remove_locked(sh, new_item.key);
            return false;
        }
        let seq = self.next_seq();
        self.class_state[class.0 as usize]
            .version
            .fetch_add(1, SeqCst);
        let old_footprint = sh.item(old_class, idx).footprint();
        let item = sh.relink_front(old_class, idx, seq);
        item.value_size = new_item.value_size;
        item.last_access = new_item.last_access;
        item.expires = new_item.expires;
        let list = &mut sh.lists[old_class as usize];
        list.bytes_used = list.bytes_used - old_footprint + footprint;
        self.stats.sets.fetch_add(1, SeqCst);
        true
    }

    /// Inserts a new item whose chunk has already been claimed.
    fn insert_claimed(&self, sh: &mut Shard, class: ClassId, item: ItemMeta) {
        let seq = self.next_seq();
        self.class_state[class.0 as usize]
            .version
            .fetch_add(1, SeqCst);
        sh.insert_front(class.0, item, seq);
        self.stats.sets.fetch_add(1, SeqCst);
    }

    /// Under the alloc lock: secures one claimed chunk of `class`, granting
    /// a fresh page or evicting the globally coldest item of the class.
    /// `own` is the caller's already-locked shard (never re-locked).
    fn secure_chunk_locked(
        &self,
        class: ClassId,
        si: usize,
        own: &mut Shard,
    ) -> Result<(), ElmemError> {
        let ci = class.0 as usize;
        for _ in 0..MAX_ALLOC_RETRIES {
            if self.try_claim_chunk(ci) {
                return Ok(());
            }
            // Grant a fresh page if the store has one to give.
            if self
                .pages_used
                .fetch_update(SeqCst, SeqCst, |p| (p < self.pages_total).then_some(p + 1))
                .is_ok()
            {
                self.class_state[ci].pages.fetch_add(1, SeqCst);
                continue; // capacity grew by ≥ 1 chunk; re-claim
            }
            // Evict the globally coldest item of the class: scan the shard
            // tails (locking peers one at a time), then evict the victim
            // shard's current tail. Exact when ops are serialized;
            // approximate under contention (Memcached's LRU is too).
            let mut coldest: Option<(usize, u64)> = None;
            for sj in 0..self.shards.len() {
                let tail = if sj == si {
                    own.tail_entry(class.0)
                } else {
                    self.lock_shard(sj).tail_entry(class.0)
                };
                if let Some((_, seq)) = tail {
                    if coldest.is_none_or(|(_, s)| seq < s) {
                        coldest = Some((sj, seq));
                    }
                }
            }
            let Some((sj, _)) = coldest else {
                self.class_state[ci].pressure.fetch_add(1, SeqCst);
                return Err(ElmemError::OutOfMemory);
            };
            let evicted = if sj == si {
                Self::evict_tail(own, class)
            } else {
                Self::evict_tail(&mut self.lock_shard(sj), class)
            };
            if evicted.is_some() {
                self.class_state[ci].len.fetch_sub(1, SeqCst);
                self.class_state[ci].version.fetch_add(1, SeqCst);
                self.class_state[ci].pressure.fetch_add(1, SeqCst);
                self.stats.evictions.fetch_add(1, SeqCst);
            }
        }
        self.class_state[ci].pressure.fetch_add(1, SeqCst);
        Err(ElmemError::OutOfMemory)
    }

    /// Evicts the current tail of `class` in one shard (the victim decided
    /// by the caller's tail scan).
    fn evict_tail(sh: &mut Shard, class: ClassId) -> Option<ItemMeta> {
        let (key, _) = sh.tail_entry(class.0)?;
        sh.remove(key).map(|(_, item)| item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::SizeClasses;
    use elmem_util::ByteSize;

    fn config() -> StoreConfig {
        StoreConfig {
            memory: ByteSize::from_mib(2),
            classes: SizeClasses::new(128, 2.0, 1024),
            shards: 4,
        }
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn serving_ops_roundtrip() {
        let s = ConcurrentSlabStore::new(config());
        s.set(KeyId(1), 10, t(1)).unwrap();
        s.set_with_ttl(KeyId(2), 10, t(1), t(5)).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.contains(KeyId(1)));
        let item = s.get(KeyId(1), t(2)).unwrap();
        assert_eq!(item.last_access, t(2));
        // Key 2 expires at t=6.
        assert!(s.get(KeyId(2), t(10)).is_none());
        assert_eq!(s.stats().expired, 1);
        assert!(s.delete(KeyId(1)));
        assert!(!s.delete(KeyId(1)));
        assert!(s.is_empty());
        s.into_serial().audit().unwrap();
    }

    #[test]
    fn serialized_ops_match_serial_facade() {
        // The one-op-at-a-time equivalence the proptest pins, in miniature.
        let mut serial = SlabStore::new(config());
        let conc = ConcurrentSlabStore::new(config());
        // Sizes span two classes; the 2-page store can give each a page.
        for k in 0..300u64 {
            let size = 10 + (k as u32 % 150);
            serial.set(KeyId(k), size, t(k + 1)).unwrap();
            conc.set(KeyId(k), size, t(k + 1)).unwrap();
            if k % 3 == 0 {
                assert_eq!(
                    serial.get(KeyId(k / 2), t(k + 1)).is_some(),
                    conc.get(KeyId(k / 2), t(k + 1)).is_some()
                );
            }
            if k % 7 == 0 {
                assert_eq!(serial.delete(KeyId(k / 3)), conc.delete(KeyId(k / 3)));
            }
        }
        let conc = conc.into_serial();
        assert_eq!(serial.stats(), conc.stats());
        assert_eq!(serial.len(), conc.len());
        assert_eq!(
            format!("{:?}", serial.dump_metadata()),
            format!("{:?}", conc.dump_metadata())
        );
        conc.audit().unwrap();
    }

    #[test]
    fn eviction_under_pressure_conserves_accounting() {
        // One-page store: force the slow path (grant, then evictions).
        let s = ConcurrentSlabStore::new(StoreConfig {
            memory: ByteSize::from_mib(1),
            classes: SizeClasses::new(128, 2.0, 1024),
            shards: 4,
        });
        let cap = ByteSize::PAGE.as_u64() / 128;
        for k in 0..cap + 50 {
            s.set(KeyId(k), 10, t(k + 1)).unwrap();
        }
        assert_eq!(s.len(), cap);
        assert_eq!(s.stats().evictions, 50);
        s.into_serial().audit().unwrap();
    }

    #[test]
    fn real_threads_conserve_items_and_bytes() {
        let s = std::sync::Arc::new(ConcurrentSlabStore::new(config()));
        let threads = 4;
        let mut handles = Vec::new();
        for th in 0..threads {
            let s = std::sync::Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                // Disjoint range per thread plus a shared contended range.
                for i in 0..2000u64 {
                    let own = 10_000 * (th + 1) + i;
                    // One size class: the store fits every key, so no
                    // thread can see a transient OOM under contention.
                    s.set(KeyId(own), 10 + (i as u32 % 50), t(i + 1)).unwrap();
                    s.set(KeyId(i % 64), 10, t(i + 1)).unwrap(); // shared
                    if i % 3 == 0 {
                        s.get(KeyId(own.saturating_sub(1)), t(i + 1));
                    }
                    if i % 5 == 0 {
                        s.delete(KeyId(own.saturating_sub(2)));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let serial = std::sync::Arc::try_unwrap(s)
            .expect("all threads joined")
            .into_serial();
        serial.audit().unwrap();
    }
}
