//! Memcached-like slab-allocated in-memory KV store (the paper's caching
//! substrate, §II-A), including the two modifications ElMem makes to
//! Memcached (§V-A1): a per-slab *timestamp dump* and a *batch import*.
//!
//! Faithfully modeled structure:
//!
//! * memory is divided into **1 MB pages**;
//! * pages are grouped into **slab classes**, each storing items of a given
//!   size range in fixed-size *chunks* (to minimize fragmentation);
//! * within a class, items sit on a doubly-linked list in **MRU order**;
//! * on `get`/`set` the item moves to the MRU head and its access timestamp
//!   is refreshed;
//! * when a class is full and no free pages remain, the **LRU tail of that
//!   class** is evicted in O(1).
//!
//! Because this is a simulation substrate, the store tracks item *metadata*
//! (key, value size, access timestamp) rather than value bytes; memory
//! accounting is still byte-accurate (chunk sizes, page assignment, item
//! overhead).
//!
//! # Example
//!
//! ```
//! use elmem_store::{SlabStore, StoreConfig};
//! use elmem_util::{ByteSize, KeyId, SimTime};
//!
//! let mut store = SlabStore::new(StoreConfig::with_memory(ByteSize::from_mib(4)));
//! store.set(KeyId(1), 100, SimTime::from_secs(1)).unwrap();
//! assert!(store.get(KeyId(1), SimTime::from_secs(2)).is_some());
//! assert!(store.get(KeyId(2), SimTime::from_secs(2)).is_none());
//! ```

pub mod classes;
pub mod concurrent;
pub mod dump;
pub mod item;
pub mod rebalance;
mod shard;
pub mod store;

pub use classes::{ClassId, SizeClasses};
pub use concurrent::ConcurrentSlabStore;
pub use dump::{ClassDump, MetadataDump};
pub use item::{Hotness, ItemMeta, ITEM_OVERHEAD_BYTES, KEY_BYTES, TIMESTAMP_BYTES};
pub use rebalance::RebalanceHint;
pub use store::{
    default_shard_count, ImportMode, SlabStore, StoreConfig, StoreStats, ELMEM_SHARDS_ENV,
    MAX_SHARDS,
};
