//! Item metadata and the hotness ordering used throughout ElMem.

use elmem_util::hashutil::mix64;
use elmem_util::{KeyId, SimTime};
use serde::{Deserialize, Serialize};

/// Fixed key size on the wire, bytes. The paper's workload fixes keys at
/// 11 bytes (§V-A2); Facebook's keys are "usually small, about 10s of bytes".
pub const KEY_BYTES: u64 = 11;

/// Per-item metadata overhead modeled after Memcached's item header
/// (pointers, flags, CAS, expiry), bytes.
pub const ITEM_OVERHEAD_BYTES: u64 = 48;

/// Size of a serialized MRU timestamp in the metadata-transfer phase, bytes
/// (§III-D1: "timestamps (10 bytes)").
pub const TIMESTAMP_BYTES: u64 = 10;

/// Recency-of-access hotness: the MRU timestamp plus a deterministic
/// tie-break so that hotness is a *total* order even when two items on
/// different nodes were touched in the same instant.
///
/// Greater is hotter. The tie-break is a stable mix of the key id, so
/// comparisons agree across nodes and across runs.
///
/// # Example
///
/// ```
/// use elmem_store::Hotness;
/// use elmem_util::{KeyId, SimTime};
///
/// let older = Hotness::new(SimTime::from_secs(1), KeyId(9));
/// let newer = Hotness::new(SimTime::from_secs(2), KeyId(3));
/// assert!(newer > older);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Hotness {
    /// Last-access time (nanoseconds of simulated time).
    pub ts: u64,
    /// Deterministic tie-break derived from the key.
    pub tiebreak: u64,
}

impl Hotness {
    /// Creates the hotness of an item last accessed at `ts`.
    pub fn new(ts: SimTime, key: KeyId) -> Self {
        Hotness {
            ts: ts.as_nanos(),
            tiebreak: mix64(key.0),
        }
    }

    /// The coldest possible hotness.
    pub const MIN: Hotness = Hotness { ts: 0, tiebreak: 0 };

    /// The hottest possible hotness.
    pub const MAX: Hotness = Hotness {
        ts: u64::MAX,
        tiebreak: u64::MAX,
    };

    /// The access instant as [`SimTime`].
    pub fn time(self) -> SimTime {
        SimTime::from_nanos(self.ts)
    }
}

/// Metadata for one cached item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ItemMeta {
    /// The item's key.
    pub key: KeyId,
    /// Size of the value in bytes (values range 1–10^4ish bytes in the
    /// paper's Generalized-Pareto workload).
    pub value_size: u32,
    /// Last access (MRU) timestamp.
    pub last_access: SimTime,
    /// Expiry instant (Memcached `exptime`); [`SimTime::MAX`] = never.
    /// Carried through migrations so destinations honor the original TTL.
    pub expires: SimTime,
}

impl ItemMeta {
    /// A never-expiring item last accessed at `now`.
    pub fn new(key: KeyId, value_size: u32, now: SimTime) -> Self {
        ItemMeta {
            key,
            value_size,
            last_access: now,
            expires: SimTime::MAX,
        }
    }

    /// An item with a time-to-live relative to `now`.
    pub fn with_ttl(key: KeyId, value_size: u32, now: SimTime, ttl: SimTime) -> Self {
        ItemMeta {
            key,
            value_size,
            last_access: now,
            expires: now.checked_add(ttl).unwrap_or(SimTime::MAX),
        }
    }

    /// Whether the item is expired at `now` (Memcached semantics: an item
    /// is dead once `now` reaches `exptime`).
    pub fn is_expired(&self, now: SimTime) -> bool {
        self.expires != SimTime::MAX && now >= self.expires
    }

    /// Total memory footprint this item needs in a chunk:
    /// key + value + header overhead.
    ///
    /// ```
    /// use elmem_store::{ItemMeta, ITEM_OVERHEAD_BYTES, KEY_BYTES};
    /// use elmem_util::{KeyId, SimTime};
    /// let m = ItemMeta::new(KeyId(0), 100, SimTime::ZERO);
    /// assert_eq!(m.footprint(), 100 + KEY_BYTES + ITEM_OVERHEAD_BYTES);
    /// ```
    pub fn footprint(&self) -> u64 {
        item_footprint(self.value_size)
    }

    /// The item's hotness (see [`Hotness`]).
    pub fn hotness(&self) -> Hotness {
        Hotness::new(self.last_access, self.key)
    }
}

/// Memory footprint of an item with the given value size.
pub fn item_footprint(value_size: u32) -> u64 {
    u64::from(value_size) + KEY_BYTES + ITEM_OVERHEAD_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotness_orders_by_time_first() {
        let a = Hotness::new(SimTime::from_secs(1), KeyId(1000));
        let b = Hotness::new(SimTime::from_secs(2), KeyId(1));
        assert!(b > a);
    }

    #[test]
    fn hotness_ties_broken_by_key_deterministically() {
        let a = Hotness::new(SimTime::from_secs(1), KeyId(1));
        let b = Hotness::new(SimTime::from_secs(1), KeyId(2));
        assert_ne!(a, b);
        // Stable across construction.
        assert_eq!(a, Hotness::new(SimTime::from_secs(1), KeyId(1)));
    }

    #[test]
    fn hotness_extremes() {
        let h = Hotness::new(SimTime::from_secs(5), KeyId(7));
        assert!(h > Hotness::MIN);
        assert!(h < Hotness::MAX);
    }

    #[test]
    fn footprint_includes_overheads() {
        assert_eq!(item_footprint(0), KEY_BYTES + ITEM_OVERHEAD_BYTES);
        assert_eq!(item_footprint(1000), 1000 + KEY_BYTES + ITEM_OVERHEAD_BYTES);
    }

    #[test]
    fn hotness_time_round_trips() {
        let t = SimTime::from_millis(123_456);
        assert_eq!(Hotness::new(t, KeyId(0)).time(), t);
    }
}
