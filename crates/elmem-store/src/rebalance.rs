//! Slab-page rebalancing (Memcached's "slab automove").
//!
//! Pages are assigned to size classes on demand and never freed, so a
//! workload whose size mix shifts leaves memory stranded in the wrong
//! classes ("slab calcification") — a class with free chunks it will never
//! use while another class evicts under pressure. Memcached's rebalancer
//! reclaims a page from a donor class and hands it to a needy one; this
//! module implements that operation plus a simple automove policy.
//!
//! (We hit calcification ourselves while building this reproduction: tiny
//! nodes with a fine-grained ladder silently failed most `set`s. See
//! `ClusterConfig::slab_classes`.)

use elmem_util::ElmemError;

use crate::classes::ClassId;
use crate::store::SlabStore;

/// A suggested page move from a donor class to a recipient class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceHint {
    /// Class to take a page from.
    pub from: ClassId,
    /// Class to give the page to.
    pub to: ClassId,
}

impl SlabStore {
    /// Suggests a page move: the donor is the class wasting the most whole
    /// pages of free chunks; the recipient is the class with the most
    /// evictions since the last call (pressure). Returns `None` when no
    /// class both donates and needs.
    ///
    /// Calling this consumes the per-class eviction pressure counters
    /// (Memcached's automove window behaves the same way).
    pub fn suggest_rebalance(&mut self) -> Option<RebalanceHint> {
        let mut donor: Option<(ClassId, u64)> = None;
        let mut recipient: Option<(ClassId, u64)> = None;
        let ids: Vec<ClassId> = self.classes().ids().collect();
        for id in ids {
            let free_pages = self.free_chunks_of_class(id) / self.classes().chunks_per_page(id);
            if free_pages >= 1 && donor.is_none_or(|(_, best)| free_pages > best) {
                donor = Some((id, free_pages));
            }
            let pressure = self.eviction_pressure(id);
            if pressure > 0 && recipient.is_none_or(|(_, best)| pressure > best) {
                recipient = Some((id, pressure));
            }
        }
        self.reset_eviction_pressure();
        match (donor, recipient) {
            (Some((from, _)), Some((to, _))) if from != to => Some(RebalanceHint { from, to }),
            _ => None,
        }
    }

    /// Runs one automove step: suggest + execute. Returns the number of
    /// items evicted from the donor page, or `None` if nothing to do.
    ///
    /// # Errors
    ///
    /// Propagates [`reassign_page`](Self::reassign_page) errors.
    pub fn automove(&mut self) -> Result<Option<u64>, ElmemError> {
        match self.suggest_rebalance() {
            Some(hint) => Ok(Some(self.reassign_page(hint.from, hint.to)?)),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::SizeClasses;
    use crate::store::StoreConfig;
    use elmem_util::{ByteSize, KeyId, SimTime};

    fn store() -> SlabStore {
        // 2 pages total; ladder 128 / 1024 chunks.
        SlabStore::new(StoreConfig {
            memory: ByteSize::from_mib(2),
            classes: SizeClasses::new(128, 8.0, 1024),
            shards: crate::store::default_shard_count(),
        })
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn calcified_store_rebalances_under_pressure() {
        let mut s = store();
        let small = s.classes().class_for(69).unwrap(); // 10B values
        let large = s.classes().class_for(959).unwrap(); // 900B values
        assert_ne!(small, large);

        // Phase 1: small items claim both pages...
        let cap_small = 2 * s.classes().chunks_per_page(small);
        for k in 0..cap_small {
            s.set(KeyId(k), 10, t(k + 1)).unwrap();
        }
        assert_eq!(s.pages_used(), 2);
        // ...then the workload shifts: the small class empties out while the
        // large class is under eviction pressure.
        for k in 0..cap_small {
            s.delete(KeyId(k));
        }
        // Large class can't even allocate (no pages left): that failed set
        // registers allocation pressure on the large class.
        assert!(s.set(KeyId(10_000_000), 900, t(100_000)).is_err());
        assert!(s.eviction_pressure(large) > 0);

        // Automove: the calcified small class donates, the pressured large
        // class receives, and the failed set now succeeds.
        let moved = s.automove().unwrap();
        assert!(moved.is_some(), "automove should trigger");
        assert_eq!(s.pages_of_class(large), 1);
        assert_eq!(s.pages_of_class(small), 1);
        s.set(KeyId(10_000_000), 900, t(100_001)).unwrap();

        // A second round under continued pressure drains the small class
        // completely.
        let cap_large = s.classes().chunks_per_page(large);
        for k in 0..cap_large + 5 {
            s.set(KeyId(20_000_000 + k), 900, t(200_000 + k)).unwrap();
        }
        assert!(s.stats().evictions >= 5);
        let moved = s.automove().unwrap();
        assert!(moved.is_some(), "second automove should trigger");
        assert_eq!(s.pages_of_class(large), 2);
        assert_eq!(s.pages_of_class(small), 0);
        // And the large class can now hold twice the items.
        for k in 0..cap_large {
            s.set(KeyId(30_000_000 + k), 900, t(300_000 + k)).unwrap();
        }
        assert_eq!(s.len_of_class(large), 2 * cap_large);
    }

    #[test]
    fn reassign_page_evicts_coldest_of_donor() {
        let mut s = store();
        let small = s.classes().class_for(69).unwrap();
        let large = s.classes().class_for(959).unwrap();
        let cap = 2 * s.classes().chunks_per_page(small);
        for k in 0..cap {
            s.set(KeyId(k), 10, t(k + 1)).unwrap();
        }
        let before = s.len();
        let evicted = s.reassign_page(small, large).unwrap();
        let per_page = s.classes().chunks_per_page(small);
        assert_eq!(evicted, per_page);
        assert_eq!(s.len(), before - per_page);
        // The coldest `per_page` items died; the hottest survive.
        for k in 0..per_page {
            assert!(!s.contains(KeyId(k)), "cold key {k} should be evicted");
        }
        for k in per_page..cap {
            assert!(s.contains(KeyId(k)), "hot key {k} should survive");
        }
        // The recipient can allocate now.
        s.set(KeyId(99_999), 900, t(100_000)).unwrap();
    }

    #[test]
    fn reassign_from_empty_class_fails() {
        let mut s = store();
        let small = s.classes().class_for(69).unwrap();
        let large = s.classes().class_for(959).unwrap();
        assert!(s.reassign_page(small, large).is_err(), "no pages to give");
    }

    #[test]
    fn reassign_to_same_class_fails() {
        let mut s = store();
        let small = s.classes().class_for(69).unwrap();
        s.set(KeyId(1), 10, t(1)).unwrap();
        assert!(s.reassign_page(small, small).is_err());
    }

    #[test]
    fn suggest_none_when_no_free_pages() {
        let mut s = store();
        let small = s.classes().class_for(69).unwrap();
        let cap = 2 * s.classes().chunks_per_page(small);
        for k in 0..cap + 10 {
            s.set(KeyId(k), 10, t(k + 1)).unwrap(); // evicts at the end
        }
        // Evictions happened but the only pressured class is also the only
        // donor candidate — and it has no free page anyway.
        assert!(s.suggest_rebalance().is_none());
    }

    #[test]
    fn store_stays_consistent_after_reassign() {
        let mut s = store();
        let small = s.classes().class_for(69).unwrap();
        let cap = 2 * s.classes().chunks_per_page(small);
        for k in 0..cap {
            s.set(KeyId(k), 10, t(k + 1)).unwrap();
        }
        let large = s.classes().class_for(959).unwrap();
        s.reassign_page(small, large).unwrap();
        // Every surviving key still gettable; MRU order intact.
        let mut hits = 0u64;
        for k in 0..cap {
            if s.get(KeyId(k), t(1_000_000 + k)).is_some() {
                hits += 1;
            }
        }
        assert_eq!(hits, s.len_of_class(small));
        let dump = s.dump_class(small);
        for w in dump.items.windows(2) {
            assert!(w[0].hotness() >= w[1].hotness());
        }
    }
}
