//! One shard of a [`SlabStore`](crate::SlabStore): the slot arena, free
//! lists, per-class MRU lists, and key index for the subset of keys that
//! route here.
//!
//! A shard is deliberately *dumb*: it owns list surgery and byte/len
//! accounting for its own slots, but every policy decision — whether a
//! chunk may be allocated, which class gets a page, which item is the
//! global LRU victim — lives in the facade that drives it (the serial
//! [`SlabStore`](crate::SlabStore) or the concurrent
//! [`ConcurrentSlabStore`](crate::ConcurrentSlabStore)). Both facades
//! funnel through the same methods here, which is what makes the
//! serialized-interleaving equivalence between them testable at all.
//!
//! # The `lru_seq` linchpin
//!
//! Every time an item is (re)linked into an MRU list it is stamped with a
//! value drawn from the store's global monotone **LRU clock**. The facade
//! maintains one invariant: *within each (shard, class) list, stamps
//! strictly descend from head to tail*. Under that invariant the global
//! MRU order of a class is exactly the k-way merge of its shard lists by
//! descending stamp — so the unsharded store's observable behavior
//! (eviction victims, crawler visit order, the median position, dump
//! contents) is recoverable at any shard count, byte for byte. See
//! DESIGN.md §14.

use elmem_util::hashutil::{mix64, FastIntMap};
use elmem_util::KeyId;

use crate::item::ItemMeta;

/// Sentinel for "no slot" in the intrusive MRU lists.
pub(crate) const NIL: u32 = u32::MAX;

/// Which shard a key routes to: the high 32 bits of the same SplitMix64
/// finalizer the key index hashes with, range-reduced without division.
/// One shard means shard 0 — the degenerate case is the unsharded store.
#[inline]
pub(crate) fn shard_of(key: KeyId, n_shards: u32) -> usize {
    let h = (mix64(key.0) >> 32) as u32;
    ((u64::from(h) * u64::from(n_shards)) >> 32) as usize
}

/// One chunk: the item it holds (if any), its LRU-clock stamp, and its
/// intrusive MRU links within the owning (shard, class) list.
#[derive(Debug, Clone)]
pub(crate) struct Slot {
    pub item: Option<ItemMeta>,
    /// LRU-clock stamp assigned when the slot was last linked.
    pub seq: u64,
    pub prev: u32,
    pub next: u32,
}

/// One class's slots within one shard. Slots are *virtual chunks*: the
/// vector grows lazily as the facade grants capacity, so the sum of slot
/// counts across shards never exceeds the class's page capacity — but
/// which physical page a given shard's chunk lives on is not modeled
/// (a documented non-goal, DESIGN.md §14).
#[derive(Debug, Clone)]
pub(crate) struct ShardList {
    pub slots: Vec<Slot>,
    pub free: Vec<u32>,
    pub head: u32,
    pub tail: u32,
    /// Occupied slots in this shard-class list.
    pub len: u64,
    /// Footprint bytes of the occupied slots.
    pub bytes_used: u64,
}

impl ShardList {
    fn new() -> Self {
        ShardList {
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
            bytes_used: 0,
        }
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let s = &self.slots[idx as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[idx as usize].prev = NIL;
        self.slots[idx as usize].next = NIL;
    }

    fn push_front(&mut self, idx: u32, seq: u64) {
        self.slots[idx as usize].seq = seq;
        self.slots[idx as usize].prev = NIL;
        self.slots[idx as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn push_back(&mut self, idx: u32, seq: u64) {
        self.slots[idx as usize].seq = seq;
        self.slots[idx as usize].next = NIL;
        self.slots[idx as usize].prev = self.tail;
        if self.tail != NIL {
            self.slots[self.tail as usize].next = idx;
        }
        self.tail = idx;
        if self.head == NIL {
            self.head = idx;
        }
    }

    /// Takes a slot index for a new item: a previously freed slot if one
    /// exists, else a fresh virtual chunk. The *capacity* decision (is the
    /// class allowed another chunk?) is the caller's.
    fn take_slot(&mut self) -> u32 {
        if let Some(idx) = self.free.pop() {
            return idx;
        }
        let idx = self.slots.len() as u32;
        self.slots.push(Slot {
            item: None,
            seq: 0,
            prev: NIL,
            next: NIL,
        });
        idx
    }
}

/// One independent shard: per-class lists plus the key index for the keys
/// that route here.
#[derive(Debug, Clone)]
pub(crate) struct Shard {
    pub lists: Vec<ShardList>,
    /// key → (class, slot) for this shard's resident keys. The
    /// deterministic integer hasher keeps placement identical across runs
    /// and platforms.
    pub index: FastIntMap<KeyId, (u16, u32)>,
}

impl Shard {
    pub fn new(n_classes: usize) -> Self {
        Shard {
            lists: (0..n_classes).map(|_| ShardList::new()).collect(),
            index: FastIntMap::default(),
        }
    }

    /// Inserts `item` into class `class` at the MRU head with stamp `seq`.
    /// The caller has already secured capacity for one chunk.
    pub fn insert_front(&mut self, class: u16, item: ItemMeta, seq: u64) {
        let list = &mut self.lists[class as usize];
        let idx = list.take_slot();
        list.slots[idx as usize].item = Some(item);
        list.push_front(idx, seq);
        list.len += 1;
        list.bytes_used += item.footprint();
        self.index.insert(item.key, (class, idx));
    }

    /// Inserts `item` at the MRU *tail* with stamp `seq` — the
    /// `batch_import` rebuild path, which pushes a merged list hottest
    /// first. The caller guarantees `seq` is below the current tail stamp.
    pub fn insert_back(&mut self, class: u16, item: ItemMeta, seq: u64) {
        let list = &mut self.lists[class as usize];
        let idx = list.take_slot();
        list.slots[idx as usize].item = Some(item);
        list.push_back(idx, seq);
        list.len += 1;
        list.bytes_used += item.footprint();
        self.index.insert(item.key, (class, idx));
    }

    /// Removes a key from this shard; returns its class and metadata.
    pub fn remove(&mut self, key: KeyId) -> Option<(u16, ItemMeta)> {
        let (class, idx) = self.index.remove(&key)?;
        let list = &mut self.lists[class as usize];
        list.unlink(idx);
        let item = list.slots[idx as usize]
            .item
            .take()
            .expect("indexed slot is occupied");
        list.free.push(idx);
        list.len -= 1;
        list.bytes_used -= item.footprint();
        Some((class, item))
    }

    /// Moves an already-resident slot to the MRU head with a fresh stamp,
    /// returning a mutable handle to its item.
    pub fn relink_front(&mut self, class: u16, idx: u32, seq: u64) -> &mut ItemMeta {
        let list = &mut self.lists[class as usize];
        list.unlink(idx);
        list.push_front(idx, seq);
        list.slots[idx as usize]
            .item
            .as_mut()
            .expect("indexed slot is occupied")
    }

    /// The item in a slot, by reference.
    pub fn item(&self, class: u16, idx: u32) -> &ItemMeta {
        self.lists[class as usize].slots[idx as usize]
            .item
            .as_ref()
            .expect("indexed slot is occupied")
    }

    /// The key of the coldest (tail) item of a class, with its stamp.
    pub fn tail_entry(&self, class: u16) -> Option<(KeyId, u64)> {
        let list = &self.lists[class as usize];
        (list.tail != NIL).then(|| {
            let slot = &list.slots[list.tail as usize];
            (slot.item.expect("tail slot is occupied").key, slot.seq)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmem_util::SimTime;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for n in [1u32, 2, 3, 4, 8, 64] {
            for k in 0..1000u64 {
                let s = shard_of(KeyId(k), n);
                assert!(s < n as usize);
                assert_eq!(s, shard_of(KeyId(k), n), "routing must be pure");
            }
        }
        // One shard degenerates to the unsharded store.
        assert!((0..1000).all(|k| shard_of(KeyId(k), 1) == 0));
    }

    #[test]
    fn shard_of_spreads_keys() {
        let n = 8u32;
        let mut counts = [0usize; 8];
        for k in 0..8000u64 {
            counts[shard_of(KeyId(k), n)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (500..1500).contains(&c),
                "shard {s} got {c} of 8000 keys — routing badly skewed"
            );
        }
    }

    #[test]
    fn insert_remove_roundtrip_keeps_accounting() {
        let mut sh = Shard::new(2);
        let a = ItemMeta::new(KeyId(1), 100, SimTime::from_secs(1));
        let b = ItemMeta::new(KeyId(2), 50, SimTime::from_secs(2));
        sh.insert_front(0, a, 1);
        sh.insert_front(0, b, 2);
        assert_eq!(sh.lists[0].len, 2);
        assert_eq!(sh.lists[0].bytes_used, a.footprint() + b.footprint());
        assert_eq!(sh.tail_entry(0), Some((KeyId(1), 1)));
        let (class, removed) = sh.remove(KeyId(1)).unwrap();
        assert_eq!(class, 0);
        assert_eq!(removed.key, KeyId(1));
        assert_eq!(sh.lists[0].len, 1);
        assert_eq!(sh.lists[0].bytes_used, b.footprint());
        assert_eq!(sh.lists[0].free.len(), 1);
        assert!(sh.remove(KeyId(1)).is_none());
    }

    #[test]
    fn relink_front_restamps() {
        let mut sh = Shard::new(1);
        sh.insert_front(0, ItemMeta::new(KeyId(1), 10, SimTime::from_secs(1)), 1);
        sh.insert_front(0, ItemMeta::new(KeyId(2), 10, SimTime::from_secs(2)), 2);
        // Key 1 is the tail; relink it to the head with stamp 3.
        let (_, idx) = *sh.index.get(&KeyId(1)).unwrap();
        sh.relink_front(0, idx, 3);
        assert_eq!(sh.tail_entry(0), Some((KeyId(2), 2)));
        let head = sh.lists[0].head;
        assert_eq!(sh.lists[0].slots[head as usize].seq, 3);
    }
}
