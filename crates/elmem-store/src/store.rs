//! The slab store: pages, chunks, MRU lists, LRU eviction — sharded.
//!
//! Since PR 8 the store body is split into N independent [`Shard`]s (key →
//! shard via the same SplitMix64 finalizer the index hashes with). This
//! serial facade drives them one op at a time and stays **byte-identical to
//! the unsharded store at any shard count**: every MRU link carries a stamp
//! from a global monotone LRU clock, so the global MRU order of a class is
//! the k-way merge of its shard lists by descending stamp (see
//! `shard.rs` and DESIGN.md §14). The [`ConcurrentSlabStore`] facade in
//! `concurrent.rs` drives the same shards from real threads.
//!
//! [`ConcurrentSlabStore`]: crate::ConcurrentSlabStore

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};

use elmem_util::{ByteSize, ElmemError, KeyId, SimTime};
use serde::{Deserialize, Serialize};

use crate::classes::{ClassId, SizeClasses};
use crate::dump::{ClassDump, MetadataDump};
use crate::item::{item_footprint, Hotness, ItemMeta};
use crate::shard::{shard_of, Shard, NIL};

/// Environment variable overriding the default shard count
/// ([`default_shard_count`]). CI runs the suite with `ELMEM_SHARDS=1` and
/// `ELMEM_SHARDS=8` to prove shard-count invariance end to end.
pub const ELMEM_SHARDS_ENV: &str = "ELMEM_SHARDS";

/// Upper bound on the shard count (configs clamp to it).
pub const MAX_SHARDS: usize = 64;

const DEFAULT_SHARDS: usize = 4;

/// The shard count configs use unless told otherwise: the
/// [`ELMEM_SHARDS_ENV`] variable if set (clamped to `1..=`[`MAX_SHARDS`]),
/// else 4. Every observable output is shard-count-invariant, so the knob
/// trades nothing but memory layout and concurrent-facade parallelism.
pub fn default_shard_count() -> usize {
    std::env::var(ELMEM_SHARDS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.clamp(1, MAX_SHARDS))
        .unwrap_or(DEFAULT_SHARDS)
}

/// Configuration for a [`SlabStore`].
///
/// # Example
///
/// ```
/// use elmem_store::StoreConfig;
/// use elmem_util::ByteSize;
///
/// let cfg = StoreConfig::with_memory(ByteSize::from_gib(4));
/// assert_eq!(cfg.memory, ByteSize::from_gib(4));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Total memory dedicated to item storage.
    pub memory: ByteSize,
    /// The slab size-class ladder.
    pub classes: SizeClasses,
    /// Number of independent shards (clamped to `1..=`[`MAX_SHARDS`]).
    /// Purely a layout/concurrency knob: all observable output is
    /// byte-identical at any value.
    pub shards: usize,
}

impl StoreConfig {
    /// Config with the given memory, Memcached's default class ladder, and
    /// the [`default_shard_count`].
    pub fn with_memory(memory: ByteSize) -> Self {
        StoreConfig {
            memory,
            classes: SizeClasses::memcached_default(),
            shards: default_shard_count(),
        }
    }
}

/// How [`SlabStore::batch_import`] merges migrated items into the local
/// MRU list (§III-D3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ImportMode {
    /// Merge by hotness so the class list stays globally MRU-sorted.
    /// This is the mode ElMem uses: it preserves the sortedness invariant
    /// that later FuseCache invocations rely on.
    Merge,
    /// Prepend the (hotter) migrated items at the MRU head in the given
    /// order, as the paper's prose describes; colder residents shift toward
    /// the tail. Slightly cheaper but can leave the list locally unsorted.
    Prepend,
}

/// Cumulative operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// `get` calls that found the key.
    pub hits: u64,
    /// `get` calls that missed.
    pub misses: u64,
    /// Successful `set` calls (inserts and updates).
    pub sets: u64,
    /// Items evicted by the LRU policy.
    pub evictions: u64,
    /// Items removed by explicit `delete`.
    pub deletes: u64,
    /// Items accepted by `batch_import`.
    pub imported: u64,
    /// Items reclaimed because their TTL elapsed (lazily on access or by
    /// the LRU crawler).
    pub expired: u64,
}

impl StoreStats {
    /// Total `get` calls (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of `get` calls that hit (0.0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Adds another node's counters into this one, for tier-wide roll-ups
    /// in telemetry dumps. Element-wise, so it is associative and
    /// commutative like the histogram merge.
    pub fn merge(&mut self, other: &StoreStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.sets += other.sets;
        self.evictions += other.evictions;
        self.deletes += other.deletes;
        self.imported += other.imported;
        self.expired += other.expired;
    }
}

/// Memoized result of [`SlabStore::median_hotness`], invalidated by the
/// class's MRU-list version counter.
///
/// The Master's §III-C scoring crawls every class's median once per
/// decision round; between rounds most classes have not changed, so the
/// O(n/2) walk is paid once per *mutation epoch* instead of once per
/// probe. Unlike the PR 5 version this holds no `Mutex`: it is a seqlock
/// of plain atomics, so probing it on the serial path takes no lock at
/// all, and the store stays `Sync` for the parallel planner. A writer that
/// loses the (never-in-practice) CAS race simply skips the memo — the
/// cache is an optimization, never an authority.
#[derive(Debug, Default)]
pub(crate) struct MedianCache {
    /// Seqlock word: odd = write in progress, readers retry-as-miss.
    seq: AtomicU64,
    /// The class version the payload was computed at.
    version: AtomicU64,
    ts: AtomicU64,
    tiebreak: AtomicU64,
    /// 0 = never written, 1 = cached `None`, 2 = cached `Some(ts, tiebreak)`.
    state: AtomicU64,
}

const MEDIAN_EMPTY: u64 = 0;
const MEDIAN_NONE: u64 = 1;
const MEDIAN_SOME: u64 = 2;

impl MedianCache {
    fn get(&self, version: u64) -> Option<Option<Hotness>> {
        let s1 = self.seq.load(SeqCst);
        if s1 & 1 != 0 {
            return None;
        }
        let v = self.version.load(SeqCst);
        let ts = self.ts.load(SeqCst);
        let tiebreak = self.tiebreak.load(SeqCst);
        let state = self.state.load(SeqCst);
        if self.seq.load(SeqCst) != s1 || state == MEDIAN_EMPTY || v != version {
            return None;
        }
        Some((state == MEDIAN_SOME).then_some(Hotness { ts, tiebreak }))
    }

    fn put(&self, version: u64, median: Option<Hotness>) {
        let s = self.seq.load(SeqCst);
        if s & 1 != 0 {
            return; // another writer is mid-flight; skip the memo
        }
        if self.seq.compare_exchange(s, s + 1, SeqCst, SeqCst).is_err() {
            return;
        }
        self.version.store(version, SeqCst);
        if let Some(h) = median {
            self.ts.store(h.ts, SeqCst);
            self.tiebreak.store(h.tiebreak, SeqCst);
            self.state.store(MEDIAN_SOME, SeqCst);
        } else {
            self.state.store(MEDIAN_NONE, SeqCst);
        }
        self.seq.store(s + 2, SeqCst);
    }
}

impl Clone for MedianCache {
    /// Snapshots the payload (an independent copy: mutating either store
    /// afterwards never disturbs the other's memo). A torn read degrades
    /// to a fresh empty cache.
    fn clone(&self) -> Self {
        let fresh = MedianCache::default();
        let s1 = self.seq.load(SeqCst);
        if s1 & 1 != 0 {
            return fresh;
        }
        let version = self.version.load(SeqCst);
        let ts = self.ts.load(SeqCst);
        let tiebreak = self.tiebreak.load(SeqCst);
        let state = self.state.load(SeqCst);
        if self.seq.load(SeqCst) != s1 {
            return fresh;
        }
        fresh.version.store(version, SeqCst);
        fresh.ts.store(ts, SeqCst);
        fresh.tiebreak.store(tiebreak, SeqCst);
        fresh.state.store(state, SeqCst);
        fresh
    }
}

/// Facade-level accounting for one size class, spanning all shards.
///
/// Capacity is *virtual*: the facade grants pages to a class as a budget
/// (`capacity = pages × chunks_per_page`) and shard slot arenas grow
/// lazily against it — which physical page a chunk lives on is not
/// modeled (DESIGN.md §14, non-goals).
#[derive(Debug, Clone)]
pub(crate) struct ClassMeta {
    pub chunks_per_page: u64,
    /// Pages granted to this class.
    pub pages: u64,
    /// Resident items across all shards of this class.
    pub len: u64,
    /// Evictions + allocation failures since the pressure counter was last
    /// read (drives the slab rebalancer's recipient choice).
    pub pressure: u64,
    /// Bumped on every MRU-list mutation in any shard of this class; a
    /// stale version is proof the class — and its median — is unchanged.
    pub version: u64,
    /// Version-stamped memo of the class's median hotness.
    pub median: MedianCache,
}

impl ClassMeta {
    fn new(chunks_per_page: u64) -> Self {
        ClassMeta {
            chunks_per_page,
            pages: 0,
            len: 0,
            pressure: 0,
            version: 0,
            median: MedianCache::default(),
        }
    }

    /// Chunks this class may hold under its current page grant.
    pub fn capacity(&self) -> u64 {
        self.pages * self.chunks_per_page
    }
}

/// A single Memcached node's storage engine.
///
/// See the [crate-level documentation](crate) for the model. All operations
/// take the current simulated time explicitly; the store has no internal
/// clock. This is the deterministic *serial* facade over the shards; for
/// real-thread serving see [`ConcurrentSlabStore`](crate::ConcurrentSlabStore).
#[derive(Debug, Clone)]
pub struct SlabStore {
    pub(crate) classes: SizeClasses,
    pub(crate) n_shards: u32,
    pub(crate) shards: Vec<Shard>,
    pub(crate) class_meta: Vec<ClassMeta>,
    pub(crate) pages_total: u64,
    pub(crate) pages_used: u64,
    /// Global monotone LRU clock; every MRU link is stamped from it.
    pub(crate) lru_clock: u64,
    pub(crate) stats: StoreStats,
}

impl SlabStore {
    /// Creates an empty store.
    ///
    /// # Panics
    ///
    /// Panics if the configured memory is smaller than one page.
    pub fn new(config: StoreConfig) -> Self {
        let pages_total = config.memory.as_u64() / ByteSize::PAGE.as_u64();
        assert!(pages_total > 0, "store memory below one 1MB page");
        let n_shards = config.shards.clamp(1, MAX_SHARDS) as u32;
        let n_classes = config.classes.len();
        let class_meta = config
            .classes
            .ids()
            .map(|id| ClassMeta::new(config.classes.chunks_per_page(id)))
            .collect();
        SlabStore {
            classes: config.classes,
            n_shards,
            shards: (0..n_shards).map(|_| Shard::new(n_classes)).collect(),
            class_meta,
            pages_total,
            pages_used: 0,
            lru_clock: 0,
            stats: StoreStats::default(),
        }
    }

    /// The size-class ladder in use.
    pub fn classes(&self) -> &SizeClasses {
        &self.classes
    }

    /// Number of shards the store body is split into.
    pub fn shard_count(&self) -> usize {
        self.n_shards as usize
    }

    /// Total pages of memory this store may use.
    pub fn pages_total(&self) -> u64 {
        self.pages_total
    }

    /// Pages currently assigned to classes.
    pub fn pages_used(&self) -> u64 {
        self.pages_used
    }

    /// Pages assigned to one class.
    pub fn pages_of_class(&self, id: ClassId) -> u64 {
        self.class_meta[id.0 as usize].pages
    }

    /// Number of items resident in one class.
    pub fn len_of_class(&self, id: ClassId) -> u64 {
        self.class_meta[id.0 as usize].len
    }

    /// Total resident items.
    pub fn len(&self) -> u64 {
        self.class_meta.iter().map(|m| m.len).sum()
    }

    /// Whether the store holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of item payload currently resident (footprints, not chunks).
    pub fn bytes_used(&self) -> ByteSize {
        ByteSize(
            self.shards
                .iter()
                .flat_map(|sh| sh.lists.iter())
                .map(|l| l.bytes_used)
                .sum(),
        )
    }

    /// Operation counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// For each class, the fraction of this store's *used* pages assigned to
    /// it — the weight `w_b` in the paper's node-scoring formula (§III-C).
    pub fn page_weights(&self) -> Vec<(ClassId, f64)> {
        let used = self.pages_used.max(1) as f64;
        self.classes
            .ids()
            .map(|id| (id, self.class_meta[id.0 as usize].pages as f64 / used))
            .collect()
    }

    /// The next LRU-clock stamp (strictly increasing).
    fn next_seq(&mut self) -> u64 {
        self.lru_clock += 1;
        self.lru_clock
    }

    /// Looks up a key, refreshing its MRU position and timestamp on hit.
    ///
    /// An item whose TTL has elapsed is reclaimed lazily here and reported
    /// as a miss (Memcached's lazy-expiry semantics).
    pub fn get(&mut self, key: KeyId, now: SimTime) -> Option<ItemMeta> {
        let si = shard_of(key, self.n_shards);
        match self.shards[si].index.get(&key).copied() {
            Some((class, idx)) => {
                if self.shards[si].item(class, idx).is_expired(now) {
                    self.remove_entry(key);
                    self.stats.expired += 1;
                    self.stats.misses += 1;
                    return None;
                }
                self.stats.hits += 1;
                let seq = self.next_seq();
                self.class_meta[class as usize].version += 1;
                let item = self.shards[si].relink_front(class, idx, seq);
                item.last_access = now;
                Some(*item)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Looks up a key without disturbing MRU order or counters.
    pub fn peek(&self, key: KeyId) -> Option<ItemMeta> {
        let sh = &self.shards[shard_of(key, self.n_shards)];
        let (class, idx) = sh.index.get(&key).copied()?;
        sh.lists[class as usize].slots[idx as usize].item
    }

    /// Whether a key is resident.
    pub fn contains(&self, key: KeyId) -> bool {
        self.shards[shard_of(key, self.n_shards)]
            .index
            .contains_key(&key)
    }

    /// Inserts or updates a key, moving it to the MRU head.
    ///
    /// # Errors
    ///
    /// * [`ElmemError::ItemTooLarge`] if the footprint exceeds the largest
    ///   chunk;
    /// * [`ElmemError::OutOfMemory`] if no free chunk, free page, or
    ///   evictable item exists in the needed class.
    pub fn set(&mut self, key: KeyId, value_size: u32, now: SimTime) -> Result<(), ElmemError> {
        self.set_item(ItemMeta::new(key, value_size, now))
    }

    /// Inserts or updates a key with a time-to-live (Memcached `exptime`).
    ///
    /// # Errors
    ///
    /// Same as [`set`](Self::set).
    pub fn set_with_ttl(
        &mut self,
        key: KeyId,
        value_size: u32,
        now: SimTime,
        ttl: SimTime,
    ) -> Result<(), ElmemError> {
        self.set_item(ItemMeta::with_ttl(key, value_size, now, ttl))
    }

    /// Memcached's `add`: stores only if the key is absent (or expired).
    /// Returns whether the value was stored.
    ///
    /// # Errors
    ///
    /// Same as [`set`](Self::set).
    pub fn add(&mut self, key: KeyId, value_size: u32, now: SimTime) -> Result<bool, ElmemError> {
        if self.peek_live(key, now).is_some() {
            return Ok(false);
        }
        self.set(key, value_size, now)?;
        Ok(true)
    }

    /// Memcached's `replace`: stores only if the key is present (and not
    /// expired). Returns whether the value was stored.
    ///
    /// # Errors
    ///
    /// Same as [`set`](Self::set).
    pub fn replace(
        &mut self,
        key: KeyId,
        value_size: u32,
        now: SimTime,
    ) -> Result<bool, ElmemError> {
        if self.peek_live(key, now).is_none() {
            return Ok(false);
        }
        self.set(key, value_size, now)?;
        Ok(true)
    }

    /// Memcached's `cas` (check-and-set): stores only if the item's current
    /// MRU timestamp equals `expected_last_access` — the store's analogue of
    /// the CAS token, which changes on every write or touch. Returns whether
    /// the value was stored.
    ///
    /// # Errors
    ///
    /// Same as [`set`](Self::set).
    pub fn cas(
        &mut self,
        key: KeyId,
        value_size: u32,
        now: SimTime,
        expected_last_access: SimTime,
    ) -> Result<bool, ElmemError> {
        match self.peek_live(key, now) {
            Some(item) if item.last_access == expected_last_access => {
                self.set(key, value_size, now)?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Like [`peek`](Self::peek) but treating an expired item as absent
    /// (without reclaiming it).
    pub fn peek_live(&self, key: KeyId, now: SimTime) -> Option<ItemMeta> {
        self.peek(key).filter(|item| !item.is_expired(now))
    }

    fn set_item(&mut self, new_item: ItemMeta) -> Result<(), ElmemError> {
        let ItemMeta {
            key,
            value_size,
            last_access: now,
            expires,
        } = new_item;
        let footprint = item_footprint(value_size);
        let class = self
            .classes
            .class_for(footprint)
            .ok_or(ElmemError::ItemTooLarge {
                item_bytes: footprint,
                max_chunk_bytes: self.classes.max_chunk(),
            })?;

        let si = shard_of(key, self.n_shards);
        if let Some((old_class, idx)) = self.shards[si].index.get(&key).copied() {
            if old_class == class.0 {
                // Update in place.
                let seq = self.next_seq();
                self.class_meta[old_class as usize].version += 1;
                let sh = &mut self.shards[si];
                let old_footprint = sh.item(old_class, idx).footprint();
                let item = sh.relink_front(old_class, idx, seq);
                item.value_size = value_size;
                item.last_access = now;
                item.expires = expires;
                let list = &mut sh.lists[old_class as usize];
                list.bytes_used = list.bytes_used - old_footprint + footprint;
                self.stats.sets += 1;
                return Ok(());
            }
            // Size-class change: remove, then insert fresh below.
            self.remove_entry(key);
        }

        self.secure_chunk_or_evict(class)?;
        let seq = self.next_seq();
        let meta = &mut self.class_meta[class.0 as usize];
        meta.len += 1;
        meta.version += 1;
        self.shards[si].insert_front(
            class.0,
            ItemMeta {
                key,
                value_size,
                last_access: now,
                expires,
            },
            seq,
        );
        self.stats.sets += 1;
        Ok(())
    }

    /// Refreshes a key's TTL and MRU position without rewriting the value
    /// (Memcached's `touch` command). Returns the refreshed metadata, or
    /// `None` if the key is absent or already expired.
    pub fn touch(&mut self, key: KeyId, now: SimTime, ttl: SimTime) -> Option<ItemMeta> {
        self.get(key, now)?;
        let si = shard_of(key, self.n_shards);
        let (class, idx) = self.shards[si].index.get(&key).copied()?;
        let item = self.shards[si].lists[class as usize].slots[idx as usize]
            .item
            .as_mut()
            .expect("indexed slot is occupied");
        item.expires = now.checked_add(ttl).unwrap_or(SimTime::MAX);
        Some(*item)
    }

    /// Drops every item (Memcached's `flush_all`), keeping page
    /// assignments (real Memcached never returns pages either).
    pub fn flush_all(&mut self) {
        let keys: Vec<KeyId> = self
            .shards
            .iter()
            .flat_map(|sh| sh.index.keys().copied())
            .collect();
        for key in keys {
            self.remove_entry(key);
            self.stats.deletes += 1;
        }
    }

    /// One bounded pass of the LRU crawler (the mechanism behind the
    /// paper's timestamp-dump patch, §V-A1): walks each class from the
    /// cold end reclaiming expired items, visiting at most `budget` items
    /// in total. Returns the number reclaimed.
    ///
    /// The cold-to-hot order is the ascending-stamp merge of the shard
    /// lists — exactly the unsharded store's tail walk.
    pub fn crawl_expired(&mut self, now: SimTime, budget: u64) -> u64 {
        let mut visited = 0u64;
        let mut reclaimed = 0u64;
        'classes: for ci in 0..self.class_meta.len() {
            // Per-shard cursors start at the tails and walk toward the
            // heads; each step visits the globally coldest unvisited item.
            let mut cursors: Vec<u32> = self.shards.iter().map(|sh| sh.lists[ci].tail).collect();
            loop {
                if visited >= budget {
                    break 'classes;
                }
                let mut coldest: Option<(usize, u64)> = None;
                for (si, &cur) in cursors.iter().enumerate() {
                    if cur == NIL {
                        continue;
                    }
                    let seq = self.shards[si].lists[ci].slots[cur as usize].seq;
                    if coldest.is_none_or(|(_, s)| seq < s) {
                        coldest = Some((si, seq));
                    }
                }
                let Some((si, _)) = coldest else { break };
                let cur = cursors[si];
                let slot = &self.shards[si].lists[ci].slots[cur as usize];
                let item = slot.item.expect("linked slot is occupied");
                let prev = slot.prev;
                visited += 1;
                if item.is_expired(now) {
                    self.remove_entry(item.key);
                    self.stats.expired += 1;
                    reclaimed += 1;
                }
                cursors[si] = prev;
            }
        }
        reclaimed
    }

    /// Removes a key; returns whether it was present.
    pub fn delete(&mut self, key: KeyId) -> bool {
        let removed = self.remove_entry(key).is_some();
        if removed {
            self.stats.deletes += 1;
        }
        removed
    }

    fn remove_entry(&mut self, key: KeyId) -> Option<ItemMeta> {
        let si = shard_of(key, self.n_shards);
        let (class, item) = self.shards[si].remove(key)?;
        let meta = &mut self.class_meta[class as usize];
        meta.len -= 1;
        meta.version += 1;
        Some(item)
    }

    /// Evicts the LRU tail of `class` — the globally coldest item, i.e.
    /// the minimum stamp across the shard tails. Returns the evicted item,
    /// or `None` if the class is empty.
    pub fn evict_lru(&mut self, class: ClassId) -> Option<ItemMeta> {
        let ci = class.0 as usize;
        let mut coldest: Option<(KeyId, u64)> = None;
        for sh in &self.shards {
            if let Some((key, seq)) = sh.tail_entry(class.0) {
                if coldest.is_none_or(|(_, s)| seq < s) {
                    coldest = Some((key, seq));
                }
            }
        }
        let (key, _) = coldest?;
        let item = self.remove_entry(key);
        self.stats.evictions += 1;
        self.class_meta[ci].pressure += 1;
        item
    }

    /// Secures capacity for one more chunk in `class` without evicting:
    /// true if the class is under its capacity (a freed chunk exists
    /// somewhere) or a fresh page could be granted.
    fn secure_chunk(&mut self, class: ClassId) -> bool {
        let meta = &self.class_meta[class.0 as usize];
        if meta.len < meta.capacity() {
            return true;
        }
        if self.pages_used < self.pages_total {
            self.class_meta[class.0 as usize].pages += 1;
            self.pages_used += 1;
            return true;
        }
        false
    }

    /// [`secure_chunk`](Self::secure_chunk), falling back to evicting the
    /// class's LRU item (Memcached semantics: eviction never crosses
    /// classes).
    fn secure_chunk_or_evict(&mut self, class: ClassId) -> Result<(), ElmemError> {
        if self.secure_chunk(class) {
            return Ok(());
        }
        if self.evict_lru(class).is_some() {
            return Ok(());
        }
        self.class_meta[class.0 as usize].pressure += 1;
        Err(ElmemError::OutOfMemory)
    }

    /// Free chunks currently available in a class (capacity not yet
    /// occupied).
    pub fn free_chunks_of_class(&self, id: ClassId) -> u64 {
        let meta = &self.class_meta[id.0 as usize];
        meta.capacity() - meta.len
    }

    /// Eviction/allocation-failure pressure accumulated by a class since
    /// the counters were last reset (see the `rebalance` module).
    pub fn eviction_pressure(&self, id: ClassId) -> u64 {
        self.class_meta[id.0 as usize].pressure
    }

    /// Resets all per-class pressure counters.
    pub fn reset_eviction_pressure(&mut self) {
        for meta in &mut self.class_meta {
            meta.pressure = 0;
        }
    }

    /// Moves one page of chunk *capacity* from class `from` to class `to`
    /// (Memcached's slab rebalancer). The donor evicts its coldest items
    /// until it fits in one page less; the recipient's budget grows by a
    /// page. Chunks are virtual (DESIGN.md §14), so no physical compaction
    /// happens.
    ///
    /// Returns the number of items evicted from the donor.
    ///
    /// # Errors
    ///
    /// [`ElmemError::InvalidConfig`] if `from == to`;
    /// [`ElmemError::InvalidScaling`] if the donor has no page to give.
    pub fn reassign_page(&mut self, from: ClassId, to: ClassId) -> Result<u64, ElmemError> {
        if from == to {
            return Err(ElmemError::InvalidConfig(
                "cannot reassign a page to the same class".to_string(),
            ));
        }
        let fi = from.0 as usize;
        if self.class_meta[fi].pages == 0 {
            return Err(ElmemError::InvalidScaling(format!(
                "{from} has no page to donate"
            )));
        }
        // Evict the donor's coldest items until one page's worth of its
        // capacity is unoccupied.
        let target = (self.class_meta[fi].pages - 1) * self.class_meta[fi].chunks_per_page;
        let mut evicted = 0u64;
        while self.class_meta[fi].len > target {
            if self.evict_lru(from).is_none() {
                break;
            }
            evicted += 1;
        }
        self.class_meta[fi].pages -= 1;
        self.pages_used -= 1;
        self.class_meta[to.0 as usize].pages += 1;
        self.pages_used += 1;
        Ok(evicted)
    }

    /// Iterates a class's items in MRU (hottest-first) order: the
    /// descending-stamp merge of the shard lists.
    pub fn iter_class_mru(&self, class: ClassId) -> ClassMruIter<'_> {
        ClassMruIter {
            shards: &self.shards,
            class: class.0,
            cursors: self
                .shards
                .iter()
                .map(|sh| sh.lists[class.0 as usize].head)
                .collect(),
        }
    }

    /// Iterates all resident items (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = ItemMeta> + '_ {
        self.shards.iter().flat_map(|sh| {
            sh.index.iter().map(|(_, &(class, idx))| {
                sh.lists[class as usize].slots[idx as usize]
                    .item
                    .expect("indexed slot is occupied")
            })
        })
    }

    /// The MRU timestamps of a class in MRU order — the paper's
    /// "timestamp dump" Memcached modification (§V-A1).
    pub fn dump_class(&self, class: ClassId) -> ClassDump {
        let items: Vec<ItemMeta> = self.iter_class_mru(class).collect();
        ClassDump::new(class, items)
    }

    /// Dumps every non-empty class.
    pub fn dump_metadata(&self) -> MetadataDump {
        let dumps = self
            .classes
            .ids()
            .filter(|id| self.len_of_class(*id) > 0)
            .map(|id| self.dump_class(id))
            .collect();
        MetadataDump::new(dumps)
    }

    /// The canonicalized class dumps of one shard — the per-shard unit of
    /// the parallel planning fan-out. Merging every shard's output with
    /// [`merge_shard_dumps`](Self::merge_shard_dumps) reproduces
    /// [`dump_metadata`](Self::dump_metadata) byte for byte: hotness is a
    /// total order (distinct keys never tie), so the canonical descending
    /// order of a class is unique however its items were partitioned.
    pub fn dump_shard_classes(&self, shard: usize) -> Vec<ClassDump> {
        let sh = &self.shards[shard];
        self.classes
            .ids()
            .filter(|id| sh.lists[id.0 as usize].len > 0)
            .map(|id| {
                let list = &sh.lists[id.0 as usize];
                let mut items = Vec::with_capacity(list.len as usize);
                let mut cursor = list.head;
                while cursor != NIL {
                    let slot = &list.slots[cursor as usize];
                    items.push(slot.item.expect("linked slot is occupied"));
                    cursor = slot.next;
                }
                ClassDump::new(id, items)
            })
            .collect()
    }

    /// Reassembles per-shard dumps ([`dump_shard_classes`](Self::dump_shard_classes))
    /// into the full metadata dump, byte-identical to
    /// [`dump_metadata`](Self::dump_metadata).
    pub fn merge_shard_dumps(&self, parts: &[Vec<ClassDump>]) -> MetadataDump {
        let dumps = self
            .classes
            .ids()
            .filter_map(|id| {
                let mut items: Vec<ItemMeta> = Vec::new();
                for part in parts {
                    if let Some(d) = part.iter().find(|d| d.class == id) {
                        items.extend_from_slice(&d.items);
                    }
                }
                (!items.is_empty()).then(|| ClassDump::new(id, items))
            })
            .collect();
        MetadataDump::new(dumps)
    }

    /// [`dump_metadata`](Self::dump_metadata) with the per-shard dump work
    /// fanned out over up to `jobs` threads (byte-identical at any job
    /// count — the migration planner's fan-out unit).
    pub fn dump_metadata_par(&self, jobs: usize) -> MetadataDump {
        let shard_ids: Vec<usize> = (0..self.shards.len()).collect();
        let parts =
            elmem_util::par::par_map_indexed(jobs, &shard_ids, |_, &s| self.dump_shard_classes(s));
        self.merge_shard_dumps(&parts)
    }

    /// Median hotness of a class's MRU list (the statistic the Master
    /// compares across nodes when choosing which node to retire, §III-C).
    ///
    /// Returns `None` for an empty class.
    ///
    /// The O(n/2) merged walk is memoized against the class's mutation
    /// version: repeated probes of an unchanged class (the Master scores
    /// every node's every class per decision round) return the cached
    /// median without walking — or locking — anything.
    pub fn median_hotness(&self, class: ClassId) -> Option<Hotness> {
        let meta = &self.class_meta[class.0 as usize];
        if meta.len == 0 {
            return None;
        }
        if let Some(median) = meta.median.get(meta.version) {
            return median;
        }
        let target = (meta.len / 2) as usize;
        let median = self.iter_class_mru(class).nth(target).map(|i| i.hotness());
        meta.median.put(meta.version, median);
        median
    }

    /// Imports migrated items into a class (the paper's batch-import
    /// Memcached modification, §V-A1).
    ///
    /// `incoming` must be sorted hottest-first. Items that collide with a
    /// resident key keep whichever copy is hotter. If the class overflows
    /// its chunk capacity (and no free pages remain), the coldest items of
    /// the merged population are evicted — by FuseCache's construction these
    /// are always colder than the migrated ones.
    ///
    /// Returns the number of items actually resident from `incoming` after
    /// the merge.
    ///
    /// # Errors
    ///
    /// [`ElmemError::InvalidConfig`] if any incoming item does not belong to
    /// `class` under this store's ladder.
    pub fn batch_import(
        &mut self,
        class: ClassId,
        incoming: &[ItemMeta],
        mode: ImportMode,
    ) -> Result<u64, ElmemError> {
        for item in incoming {
            if self.classes.class_for(item.footprint()) != Some(class) {
                return Err(ElmemError::InvalidConfig(format!(
                    "item {} (footprint {}) does not belong to {class}",
                    item.key,
                    item.footprint()
                )));
            }
        }

        // Resolve key collisions: drop incoming copies that are colder than
        // a resident copy; remove resident copies that are colder.
        let mut accepted: Vec<ItemMeta> = Vec::with_capacity(incoming.len());
        for item in incoming {
            match self.peek(item.key) {
                Some(resident) if resident.hotness() >= item.hotness() => continue,
                Some(_) => {
                    self.remove_entry(item.key);
                    accepted.push(*item);
                }
                None => accepted.push(*item),
            }
        }

        // Canonicalize to strict hotness order (the MRU list may order
        // same-instant accesses either way; see `ClassDump::new`).
        let mut resident: Vec<ItemMeta> = self.iter_class_mru(class).collect();
        resident.sort_by_key(|i| std::cmp::Reverse(i.hotness()));
        // Snapshot the accepted keys (sorted, for binary search) before the
        // merge consumes `accepted`; both import modes then build `merged`
        // by *moving* the accepted items — no clones of the batch.
        let mut incoming_keys: Vec<KeyId> = accepted.iter().map(|i| i.key).collect();
        incoming_keys.sort_unstable();
        let merged: Vec<ItemMeta> = match mode {
            ImportMode::Merge => {
                // Both inputs are hottest-first; standard 2-way merge.
                accepted.sort_by_key(|i| std::cmp::Reverse(i.hotness()));
                let mut all = Vec::with_capacity(resident.len() + accepted.len());
                let (mut i, mut j) = (0usize, 0usize);
                while i < resident.len() && j < accepted.len() {
                    if resident[i].hotness() >= accepted[j].hotness() {
                        all.push(resident[i]);
                        i += 1;
                    } else {
                        all.push(accepted[j]);
                        j += 1;
                    }
                }
                all.extend_from_slice(&resident[i..]);
                all.extend_from_slice(&accepted[j..]);
                all
            }
            ImportMode::Prepend => {
                let mut all = accepted;
                all.extend_from_slice(&resident);
                all
            }
        };

        // Rebuild the class list: clear it, then grow capacity and insert
        // in order (hottest first, descending stamps from a block reserved
        // off the LRU clock), evicting the overflow (the tail of `merged`).
        for item in &resident {
            self.remove_entry(item.key);
        }
        let n = merged.len() as u64;
        let base = self.lru_clock;
        self.lru_clock += n;
        let mut kept_incoming = 0u64;
        let mut inserted = 0u64;
        for (i, item) in merged.iter().enumerate() {
            if !self.secure_chunk(class) {
                break; // class cannot grow further; rest is overflow
            }
            let seq = base + (n - i as u64);
            let meta = &mut self.class_meta[class.0 as usize];
            meta.len += 1;
            meta.version += 1;
            let si = shard_of(item.key, self.n_shards);
            self.shards[si].insert_back(class.0, *item, seq);
            inserted += 1;
            if incoming_keys.binary_search(&item.key).is_ok() {
                kept_incoming += 1;
                self.stats.imported += 1;
            }
        }
        // Count the dropped overflow as evictions.
        self.stats.evictions += merged.len() as u64 - inserted;
        Ok(kept_incoming)
    }

    /// Exhaustively checks the store's internal invariants: per-shard slot
    /// accounting (every chunk is exactly occupied or free), MRU-list
    /// structure (forward walks agree with prev pointers, length counters,
    /// and strictly descending LRU stamps), byte/page/capacity
    /// conservation, index ↔ slot agreement, and key → shard routing.
    ///
    /// This is the slab/byte-conservation leg of the chaos engine's
    /// invariant checker (DESIGN.md §12); it is O(items) and intended for
    /// post-run audits, not the request path.
    ///
    /// # Errors
    ///
    /// [`ElmemError::InvariantViolation`] naming the first broken invariant
    /// (checked in a deterministic order).
    pub fn audit(&self) -> Result<(), ElmemError> {
        let fail = |msg: String| Err(ElmemError::InvariantViolation(msg));
        let mut total_len = 0u64;
        let mut total_pages = 0u64;
        for (ci, meta) in self.class_meta.iter().enumerate() {
            let mut class_len = 0u64;
            for (si, shard) in self.shards.iter().enumerate() {
                let list = &shard.lists[ci];
                let occupied = list.slots.iter().filter(|s| s.item.is_some()).count() as u64;
                if occupied != list.len {
                    return fail(format!(
                        "class {ci} shard {si}: len counter {} but {occupied} occupied slots",
                        list.len
                    ));
                }
                if list.free.len() as u64 + occupied != list.slots.len() as u64 {
                    return fail(format!(
                        "class {ci} shard {si}: {} free + {occupied} occupied != {} slots",
                        list.free.len(),
                        list.slots.len()
                    ));
                }
                let mut free_sorted: Vec<u32> = list.free.clone();
                free_sorted.sort_unstable();
                free_sorted.dedup();
                if free_sorted.len() != list.free.len() {
                    return fail(format!(
                        "class {ci} shard {si}: duplicate entries in free list"
                    ));
                }
                for &idx in &free_sorted {
                    match list.slots.get(idx as usize) {
                        None => {
                            return fail(format!(
                                "class {ci} shard {si}: free slot {idx} out of range"
                            ))
                        }
                        Some(slot) if slot.item.is_some() => {
                            return fail(format!(
                                "class {ci} shard {si}: free slot {idx} is occupied"
                            ));
                        }
                        Some(_) => {}
                    }
                }
                let bytes: u64 = list
                    .slots
                    .iter()
                    .filter_map(|s| s.item.as_ref())
                    .map(|i| i.footprint())
                    .sum();
                if bytes != list.bytes_used {
                    return fail(format!(
                        "class {ci} shard {si}: bytes_used {} but item footprints sum to {bytes}",
                        list.bytes_used
                    ));
                }
                // Forward MRU walk: every linked slot occupied, prev
                // pointers mirror next pointers, stamps strictly
                // descending, and the walk covers exactly `len` items.
                let mut walked = 0u64;
                let mut prev = NIL;
                let mut prev_seq = u64::MAX;
                let mut cursor = list.head;
                while cursor != NIL {
                    let slot = match list.slots.get(cursor as usize) {
                        Some(s) => s,
                        None => {
                            return fail(format!(
                                "class {ci} shard {si}: MRU cursor {cursor} out of range"
                            ))
                        }
                    };
                    if slot.item.is_none() {
                        return fail(format!(
                            "class {ci} shard {si}: MRU-linked slot {cursor} is empty"
                        ));
                    }
                    if slot.prev != prev {
                        return fail(format!(
                            "class {ci} shard {si}: slot {cursor} prev {} != expected {prev}",
                            slot.prev
                        ));
                    }
                    if slot.seq >= prev_seq {
                        return fail(format!(
                            "class {ci} shard {si}: slot {cursor} stamp {} not below \
                             predecessor's {prev_seq}",
                            slot.seq
                        ));
                    }
                    if slot.seq > self.lru_clock {
                        return fail(format!(
                            "class {ci} shard {si}: slot {cursor} stamp {} ahead of the \
                             LRU clock {}",
                            slot.seq, self.lru_clock
                        ));
                    }
                    walked += 1;
                    if walked > list.len {
                        return fail(format!(
                            "class {ci} shard {si}: MRU list longer than len (cycle?)"
                        ));
                    }
                    prev = cursor;
                    prev_seq = slot.seq;
                    cursor = slot.next;
                }
                if walked != list.len {
                    return fail(format!(
                        "class {ci} shard {si}: MRU walk covered {walked} of {} items",
                        list.len
                    ));
                }
                if list.tail != prev {
                    return fail(format!(
                        "class {ci} shard {si}: tail {} but MRU walk ended at {prev}",
                        list.tail
                    ));
                }
                class_len += list.len;
            }
            if class_len != meta.len {
                return fail(format!(
                    "class {ci}: len counter {} but shards hold {class_len} items",
                    meta.len
                ));
            }
            if meta.len > meta.capacity() {
                return fail(format!(
                    "class {ci}: {} items over capacity {} ({} pages of {} chunks)",
                    meta.len,
                    meta.capacity(),
                    meta.pages,
                    meta.chunks_per_page
                ));
            }
            total_len += meta.len;
            total_pages += meta.pages;
        }
        if total_pages != self.pages_used {
            return fail(format!(
                "pages_used {} but classes hold {total_pages}",
                self.pages_used
            ));
        }
        if self.pages_used > self.pages_total {
            return fail(format!(
                "pages_used {} exceeds pages_total {}",
                self.pages_used, self.pages_total
            ));
        }
        let indexed: u64 = self.shards.iter().map(|sh| sh.index.len() as u64).sum();
        if indexed != total_len {
            return fail(format!(
                "index holds {indexed} keys but classes hold {total_len} items"
            ));
        }
        // Index → slot agreement and key → shard routing. The index
        // iterates in hash order, so violations are collected and the
        // smallest key reported to keep the message deterministic.
        for (si, shard) in self.shards.iter().enumerate() {
            let mut bad_key: Option<(KeyId, String)> = None;
            for (&key, &(class, idx)) in shard.index.iter() {
                let routed = shard_of(key, self.n_shards);
                let problem = if routed != si {
                    Some(format!(
                        "{key} routes to shard {routed} but is indexed in shard {si}"
                    ))
                } else {
                    match shard
                        .lists
                        .get(class as usize)
                        .and_then(|l| l.slots.get(idx as usize))
                    {
                        None => Some(format!("{key} maps to out-of-range slot {class}/{idx}")),
                        Some(slot) => match slot.item {
                            None => Some(format!("{key} maps to empty slot {class}/{idx}")),
                            Some(item) if item.key != key => {
                                Some(format!("{key} maps to slot holding {}", item.key))
                            }
                            Some(_) => None,
                        },
                    }
                };
                if let Some(msg) = problem {
                    if bad_key.as_ref().is_none_or(|(k, _)| key < *k) {
                        bad_key = Some((key, msg));
                    }
                }
            }
            if let Some((_, msg)) = bad_key {
                return fail(format!("shard {si} index: {msg}"));
            }
        }
        Ok(())
    }

    /// Deliberately breaks the byte accounting of the first non-empty
    /// shard list. Exists so cross-crate tests can prove [`SlabStore::audit`]
    /// catches corruption; never call it outside tests.
    #[doc(hidden)]
    pub fn corrupt_bytes_used_for_tests(&mut self) {
        if let Some(list) = self
            .shards
            .iter_mut()
            .flat_map(|sh| sh.lists.iter_mut())
            .find(|l| l.len > 0)
        {
            list.bytes_used += 1;
        }
    }
}

/// Iterator over a class's items in MRU order — the descending-stamp merge
/// of the shard lists. Created by [`SlabStore::iter_class_mru`].
#[derive(Debug)]
pub struct ClassMruIter<'a> {
    shards: &'a [Shard],
    class: u16,
    /// Per-shard cursor into the class's list ([`NIL`] = exhausted).
    cursors: Vec<u32>,
}

impl Iterator for ClassMruIter<'_> {
    type Item = ItemMeta;

    fn next(&mut self) -> Option<ItemMeta> {
        let mut hottest: Option<(usize, u64)> = None;
        for (si, &cur) in self.cursors.iter().enumerate() {
            if cur == NIL {
                continue;
            }
            let seq = self.shards[si].lists[self.class as usize].slots[cur as usize].seq;
            if hottest.is_none_or(|(_, s)| seq > s) {
                hottest = Some((si, seq));
            }
        }
        let (si, _) = hottest?;
        let slot = &self.shards[si].lists[self.class as usize].slots[self.cursors[si] as usize];
        self.cursors[si] = slot.next;
        Some(slot.item.expect("linked slot is occupied"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_lookups_and_hit_rate() {
        let s = StoreStats {
            hits: 3,
            misses: 1,
            ..StoreStats::default()
        };
        assert_eq!(s.lookups(), 4);
        assert_eq!(s.hit_rate(), 0.75);
        assert_eq!(StoreStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn stats_merge_is_elementwise() {
        let a = StoreStats {
            hits: 1,
            misses: 2,
            sets: 3,
            evictions: 4,
            deletes: 5,
            imported: 6,
            expired: 7,
        };
        let b = StoreStats {
            hits: 10,
            misses: 20,
            sets: 30,
            evictions: 40,
            deletes: 50,
            imported: 60,
            expired: 70,
        };
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is commutative");
        assert_eq!(ab.hits, 11);
        assert_eq!(ab.expired, 77);
        assert_eq!(ab.lookups(), 33);
    }

    fn small_store() -> SlabStore {
        SlabStore::new(StoreConfig {
            memory: ByteSize::from_mib(2),
            classes: SizeClasses::new(128, 2.0, 1024),
            shards: default_shard_count(),
        })
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn set_get_roundtrip() {
        let mut s = small_store();
        s.set(KeyId(1), 10, t(1)).unwrap();
        let item = s.get(KeyId(1), t(2)).unwrap();
        assert_eq!(item.key, KeyId(1));
        assert_eq!(item.value_size, 10);
        assert_eq!(item.last_access, t(2));
        assert_eq!(s.stats().hits, 1);
        assert_eq!(s.stats().sets, 1);
    }

    #[test]
    fn miss_counts() {
        let mut s = small_store();
        assert!(s.get(KeyId(404), t(1)).is_none());
        assert_eq!(s.stats().misses, 1);
    }

    #[test]
    fn peek_does_not_touch() {
        let mut s = small_store();
        s.set(KeyId(1), 10, t(1)).unwrap();
        let before = s.peek(KeyId(1)).unwrap();
        assert_eq!(before.last_access, t(1));
        let hits = s.stats().hits;
        let _ = s.peek(KeyId(1));
        assert_eq!(s.stats().hits, hits);
    }

    #[test]
    fn mru_order_follows_access() {
        let mut s = small_store();
        for k in 0..5 {
            s.set(KeyId(k), 10, t(k)).unwrap();
        }
        // 4 is hottest. Touch 0 → becomes hottest.
        s.get(KeyId(0), t(10)).unwrap();
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        let order: Vec<u64> = s.iter_class_mru(class).map(|i| i.key.0).collect();
        assert_eq!(order, vec![0, 4, 3, 2, 1]);
    }

    #[test]
    fn mru_list_is_hotness_sorted_under_normal_ops() {
        let mut s = small_store();
        for k in 0..20 {
            s.set(KeyId(k), 10, t(k)).unwrap();
        }
        for k in (0..20).step_by(3) {
            s.get(KeyId(k), t(100 + k)).unwrap();
        }
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        let hot: Vec<Hotness> = s.iter_class_mru(class).map(|i| i.hotness()).collect();
        for w in hot.windows(2) {
            assert!(w[0] >= w[1], "MRU list out of order");
        }
    }

    #[test]
    fn update_same_class_updates_in_place() {
        let mut s = small_store();
        s.set(KeyId(1), 10, t(1)).unwrap();
        s.set(KeyId(1), 20, t(2)).unwrap();
        assert_eq!(s.len(), 1);
        let item = s.peek(KeyId(1)).unwrap();
        assert_eq!(item.value_size, 20);
        assert_eq!(item.last_access, t(2));
    }

    #[test]
    fn update_changes_class_when_size_grows() {
        let mut s = small_store();
        s.set(KeyId(1), 10, t(1)).unwrap();
        let small = s.classes().class_for(item_footprint(10)).unwrap();
        s.set(KeyId(1), 500, t(2)).unwrap();
        let large = s.classes().class_for(item_footprint(500)).unwrap();
        assert_ne!(small, large);
        assert_eq!(s.len_of_class(small), 0);
        assert_eq!(s.len_of_class(large), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn delete_removes() {
        let mut s = small_store();
        s.set(KeyId(1), 10, t(1)).unwrap();
        assert!(s.delete(KeyId(1)));
        assert!(!s.delete(KeyId(1)));
        assert!(!s.contains(KeyId(1)));
        assert_eq!(s.len(), 0);
        assert_eq!(s.stats().deletes, 1);
    }

    #[test]
    fn item_too_large_rejected() {
        let mut s = small_store();
        let err = s.set(KeyId(1), 10_000, t(1)).unwrap_err();
        assert!(matches!(err, ElmemError::ItemTooLarge { .. }));
    }

    #[test]
    fn lru_eviction_within_class() {
        // 1 page store: 1MiB / 128B chunks = 8192 chunks in smallest class.
        let mut s = SlabStore::new(StoreConfig {
            memory: ByteSize::from_mib(1),
            classes: SizeClasses::new(128, 2.0, 1024),
            shards: default_shard_count(),
        });
        let cap = ByteSize::PAGE.as_u64() / 128;
        for k in 0..cap + 10 {
            s.set(KeyId(k), 10, t(k)).unwrap();
        }
        assert_eq!(s.len(), cap);
        assert_eq!(s.stats().evictions, 10);
        // The 10 oldest were evicted.
        for k in 0..10 {
            assert!(!s.contains(KeyId(k)), "key {k} should be evicted");
        }
        assert!(s.contains(KeyId(10)));
    }

    #[test]
    fn eviction_victim_is_lru_not_insertion_order() {
        let mut s = SlabStore::new(StoreConfig {
            memory: ByteSize::from_mib(1),
            classes: SizeClasses::new(128, 2.0, 1024),
            shards: default_shard_count(),
        });
        let cap = ByteSize::PAGE.as_u64() / 128;
        for k in 0..cap {
            s.set(KeyId(k), 10, t(k)).unwrap();
        }
        // Touch key 0 so key 1 becomes LRU.
        s.get(KeyId(0), t(10_000)).unwrap();
        s.set(KeyId(999_999), 10, t(10_001)).unwrap();
        assert!(s.contains(KeyId(0)));
        assert!(!s.contains(KeyId(1)));
    }

    #[test]
    fn pages_assigned_on_demand_across_classes() {
        let mut s = small_store();
        assert_eq!(s.pages_used(), 0);
        s.set(KeyId(1), 10, t(1)).unwrap(); // small class
        assert_eq!(s.pages_used(), 1);
        s.set(KeyId(2), 900, t(1)).unwrap(); // large class
        assert_eq!(s.pages_used(), 2);
        let weights = s.page_weights();
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_memory_when_class_empty_and_no_pages() {
        // 1 page total, used by the small class; large class cannot allocate.
        let mut s = SlabStore::new(StoreConfig {
            memory: ByteSize::from_mib(1),
            classes: SizeClasses::new(128, 2.0, 1024),
            shards: default_shard_count(),
        });
        s.set(KeyId(1), 10, t(1)).unwrap();
        let err = s.set(KeyId(2), 900, t(2)).unwrap_err();
        assert_eq!(err, ElmemError::OutOfMemory);
    }

    #[test]
    fn median_hotness_is_middle_of_list() {
        let mut s = small_store();
        for k in 0..5 {
            s.set(KeyId(k), 10, t(k + 1)).unwrap();
        }
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        // MRU order: 4,3,2,1,0 → median (index 2) is key 2 at t=3.
        let med = s.median_hotness(class).unwrap();
        assert_eq!(med.time(), t(3));
    }

    #[test]
    fn median_hotness_empty_class() {
        let s = small_store();
        assert_eq!(s.median_hotness(ClassId(0)), None);
    }

    #[test]
    fn median_cache_tracks_mutations() {
        let mut s = small_store();
        for k in 0..9 {
            s.set(KeyId(k), 10, t(k + 1)).unwrap();
        }
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        let before = s.median_hotness(class).unwrap();
        // A cached re-probe of the unchanged class agrees with itself.
        assert_eq!(s.median_hotness(class), Some(before));
        // Any access moves the list; the cached value must be dropped and
        // the fresh walk must agree with a never-cached store.
        s.get(KeyId(0), t(100)).unwrap();
        let after = s.median_hotness(class).unwrap();
        assert_ne!(after, before, "touching the coldest item moves the median");
        let mut fresh = small_store();
        for k in 0..9 {
            fresh.set(KeyId(k), 10, t(k + 1)).unwrap();
        }
        fresh.get(KeyId(0), t(100)).unwrap();
        assert_eq!(fresh.median_hotness(class), Some(after));
    }

    #[test]
    fn median_cache_survives_clone() {
        let mut s = small_store();
        for k in 0..5 {
            s.set(KeyId(k), 10, t(k + 1)).unwrap();
        }
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        let med = s.median_hotness(class);
        let clone = s.clone();
        assert_eq!(clone.median_hotness(class), med);
        // Mutating the clone must not disturb the original's answer.
        let mut clone = clone;
        clone.get(KeyId(0), t(50)).unwrap();
        assert_eq!(s.median_hotness(class), med);
    }

    #[test]
    fn median_cache_clone_is_independent() {
        // The regression the PR 5 Mutex version would have failed if the
        // lock were shared: mutating the *original* after a clone must not
        // disturb the clone's memoized answer (and vice versa).
        let mut s = small_store();
        for k in 0..9 {
            s.set(KeyId(k), 10, t(k + 1)).unwrap();
        }
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        let med = s.median_hotness(class);
        let clone = s.clone();
        s.get(KeyId(0), t(100)).unwrap();
        let moved = s.median_hotness(class);
        assert_ne!(moved, med, "touching the coldest item moves the median");
        assert_eq!(clone.median_hotness(class), med, "clone state is private");
    }

    #[test]
    fn dump_is_mru_ordered() {
        let mut s = small_store();
        for k in 0..10 {
            s.set(KeyId(k), 10, t(k)).unwrap();
        }
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        let dump = s.dump_class(class);
        assert_eq!(dump.items.len(), 10);
        for w in dump.items.windows(2) {
            assert!(w[0].hotness() >= w[1].hotness());
        }
    }

    #[test]
    fn dump_metadata_skips_empty_classes() {
        let mut s = small_store();
        s.set(KeyId(1), 10, t(1)).unwrap();
        let dump = s.dump_metadata();
        assert_eq!(dump.classes.len(), 1);
    }

    #[test]
    fn sharded_dump_merge_matches_full_dump() {
        let mut s = small_store();
        // Sizes span two classes; the 2-page store can give each a page.
        for k in 0..200 {
            s.set(KeyId(k), 10 + (k as u32 % 150), t(k + 1)).unwrap();
        }
        for k in (0..200).step_by(7) {
            s.get(KeyId(k), t(1000 + k)).unwrap();
        }
        let full = s.dump_metadata();
        let parts: Vec<Vec<ClassDump>> = (0..s.shard_count())
            .map(|i| s.dump_shard_classes(i))
            .collect();
        assert_eq!(s.merge_shard_dumps(&parts), full);
        for jobs in [1, 2, 8] {
            assert_eq!(s.dump_metadata_par(jobs), full);
        }
    }

    #[test]
    fn batch_import_merge_keeps_sorted() {
        let mut s = small_store();
        for k in 0..10 {
            s.set(KeyId(k), 10, t(2 * k)).unwrap(); // even timestamps
        }
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        let incoming: Vec<ItemMeta> = (0..5)
            .map(|i| ItemMeta {
                key: KeyId(100 + i),
                value_size: 10,
                last_access: t(2 * (9 - i) + 1), // odd, interleaving
                expires: SimTime::MAX,
            })
            .collect();
        let kept = s.batch_import(class, &incoming, ImportMode::Merge).unwrap();
        assert_eq!(kept, 5);
        let hot: Vec<Hotness> = s.iter_class_mru(class).map(|i| i.hotness()).collect();
        assert_eq!(hot.len(), 15);
        for w in hot.windows(2) {
            assert!(w[0] >= w[1], "merged list out of order");
        }
    }

    #[test]
    fn batch_import_prepend_puts_incoming_first() {
        let mut s = small_store();
        for k in 0..3 {
            s.set(KeyId(k), 10, t(100 + k)).unwrap();
        }
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        let incoming = vec![ItemMeta {
            key: KeyId(50),
            value_size: 10,
            last_access: t(1), // colder, but prepend puts it first anyway
            expires: SimTime::MAX,
        }];
        s.batch_import(class, &incoming, ImportMode::Prepend)
            .unwrap();
        let first = s.iter_class_mru(class).next().unwrap();
        assert_eq!(first.key, KeyId(50));
    }

    #[test]
    fn batch_import_evicts_overflow_coldest() {
        let mut s = SlabStore::new(StoreConfig {
            memory: ByteSize::from_mib(1),
            classes: SizeClasses::new(128, 2.0, 1024),
            shards: default_shard_count(),
        });
        let cap = ByteSize::PAGE.as_u64() / 128;
        for k in 0..cap {
            s.set(KeyId(k), 10, t(k + 1)).unwrap();
        }
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        // Import `cap/2` items hotter than everything resident.
        let incoming: Vec<ItemMeta> = (0..cap / 2)
            .map(|i| ItemMeta {
                key: KeyId(1_000_000 + i),
                value_size: 10,
                last_access: t(10_000 + i),
                expires: SimTime::MAX,
            })
            .collect();
        let kept = s.batch_import(class, &incoming, ImportMode::Merge).unwrap();
        assert_eq!(kept, cap / 2);
        assert_eq!(s.len(), cap);
        // The coldest resident half is gone; hottest resident half remains.
        assert!(!s.contains(KeyId(0)));
        assert!(s.contains(KeyId(cap - 1)));
    }

    #[test]
    fn batch_import_key_collision_keeps_hotter() {
        let mut s = small_store();
        s.set(KeyId(1), 10, t(100)).unwrap();
        s.set(KeyId(2), 10, t(1)).unwrap();
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        let incoming = vec![
            ItemMeta {
                key: KeyId(1),
                value_size: 10,
                last_access: t(50), // colder than resident copy
                expires: SimTime::MAX,
            },
            ItemMeta {
                key: KeyId(2),
                value_size: 10,
                last_access: t(200), // hotter than resident copy
                expires: SimTime::MAX,
            },
        ];
        s.batch_import(class, &incoming, ImportMode::Merge).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.peek(KeyId(1)).unwrap().last_access, t(100));
        assert_eq!(s.peek(KeyId(2)).unwrap().last_access, t(200));
    }

    #[test]
    fn batch_import_rejects_wrong_class() {
        let mut s = small_store();
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        let incoming = vec![ItemMeta {
            key: KeyId(1),
            value_size: 900, // belongs to a larger class
            last_access: t(1),
            expires: SimTime::MAX,
        }];
        assert!(s.batch_import(class, &incoming, ImportMode::Merge).is_err());
    }

    #[test]
    fn evict_lru_returns_tail() {
        let mut s = small_store();
        for k in 0..3 {
            s.set(KeyId(k), 10, t(k)).unwrap();
        }
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        let evicted = s.evict_lru(class).unwrap();
        assert_eq!(evicted.key, KeyId(0));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn evict_lru_empty_class_is_none() {
        let mut s = small_store();
        assert!(s.evict_lru(ClassId(0)).is_none());
    }

    #[test]
    fn bytes_used_tracks_footprints() {
        let mut s = small_store();
        s.set(KeyId(1), 10, t(1)).unwrap();
        s.set(KeyId(2), 20, t(1)).unwrap();
        assert_eq!(
            s.bytes_used().as_u64(),
            item_footprint(10) + item_footprint(20)
        );
        s.delete(KeyId(1));
        assert_eq!(s.bytes_used().as_u64(), item_footprint(20));
    }

    #[test]
    fn iter_yields_all_items() {
        let mut s = small_store();
        for k in 0..7 {
            s.set(KeyId(k), 10, t(k)).unwrap();
        }
        let mut keys: Vec<u64> = s.iter().map(|i| i.key.0).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..7).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic]
    fn zero_memory_store_rejected() {
        let _ = SlabStore::new(StoreConfig::with_memory(ByteSize::from_kib(4)));
    }

    #[test]
    fn shard_count_is_clamped() {
        let s = SlabStore::new(StoreConfig {
            memory: ByteSize::from_mib(1),
            classes: SizeClasses::new(128, 2.0, 1024),
            shards: 0,
        });
        assert_eq!(s.shard_count(), 1);
        let s = SlabStore::new(StoreConfig {
            memory: ByteSize::from_mib(1),
            classes: SizeClasses::new(128, 2.0, 1024),
            shards: 10_000,
        });
        assert_eq!(s.shard_count(), MAX_SHARDS);
    }

    #[test]
    fn audit_passes_through_store_lifecycle() {
        let mut s = small_store();
        s.audit().unwrap();
        for k in 0..500 {
            // A 2 MiB store has two pages; sets that land in a third class
            // legitimately fail with OutOfMemory, which must still leave
            // the store consistent.
            let _ = s.set(KeyId(k), 50 + (k as u32 % 400), t(k));
            if k % 7 == 0 {
                s.get(KeyId(k / 2), t(k)).map(|_| ()).unwrap_or(());
            }
            if k % 11 == 0 {
                s.delete(KeyId(k / 3));
            }
        }
        s.audit().unwrap();
        // Imports, rebalancing, eviction, flush: still consistent.
        let class = s.classes().class_for(item_footprint(100)).unwrap();
        let batch: Vec<ItemMeta> = (1000..1020)
            .map(|k| ItemMeta::new(KeyId(k), 100, t(600)))
            .collect();
        s.batch_import(class, &batch, ImportMode::Merge).unwrap();
        s.audit().unwrap();
        s.evict_lru(class);
        s.audit().unwrap();
        s.flush_all();
        s.audit().unwrap();
    }

    #[test]
    fn audit_detects_corruption() {
        let mut s = small_store();
        for k in 0..20 {
            s.set(KeyId(k), 50, t(k)).unwrap();
        }
        // Corrupt a byte counter behind the accessors' backs.
        s.corrupt_bytes_used_for_tests();
        let err = s.audit().unwrap_err();
        assert!(matches!(err, ElmemError::InvariantViolation(_)), "{err}");
        assert!(err.to_string().contains("bytes_used"), "{err}");
    }
}
