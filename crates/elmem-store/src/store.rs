//! The slab store: pages, chunks, MRU lists, LRU eviction.

use elmem_util::hashutil::FastIntMap;
use elmem_util::{ByteSize, ElmemError, KeyId, SimTime};
use serde::{Deserialize, Serialize};

use crate::classes::{ClassId, SizeClasses};
use crate::dump::{ClassDump, MetadataDump};
use crate::item::{item_footprint, Hotness, ItemMeta};

const NIL: u32 = u32::MAX;

/// Configuration for a [`SlabStore`].
///
/// # Example
///
/// ```
/// use elmem_store::StoreConfig;
/// use elmem_util::ByteSize;
///
/// let cfg = StoreConfig::with_memory(ByteSize::from_gib(4));
/// assert_eq!(cfg.memory, ByteSize::from_gib(4));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Total memory dedicated to item storage.
    pub memory: ByteSize,
    /// The slab size-class ladder.
    pub classes: SizeClasses,
}

impl StoreConfig {
    /// Config with the given memory and Memcached's default class ladder.
    pub fn with_memory(memory: ByteSize) -> Self {
        StoreConfig {
            memory,
            classes: SizeClasses::memcached_default(),
        }
    }
}

/// How [`SlabStore::batch_import`] merges migrated items into the local
/// MRU list (§III-D3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ImportMode {
    /// Merge by hotness so the class list stays globally MRU-sorted.
    /// This is the mode ElMem uses: it preserves the sortedness invariant
    /// that later FuseCache invocations rely on.
    Merge,
    /// Prepend the (hotter) migrated items at the MRU head in the given
    /// order, as the paper's prose describes; colder residents shift toward
    /// the tail. Slightly cheaper but can leave the list locally unsorted.
    Prepend,
}

/// Cumulative operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// `get` calls that found the key.
    pub hits: u64,
    /// `get` calls that missed.
    pub misses: u64,
    /// Successful `set` calls (inserts and updates).
    pub sets: u64,
    /// Items evicted by the LRU policy.
    pub evictions: u64,
    /// Items removed by explicit `delete`.
    pub deletes: u64,
    /// Items accepted by `batch_import`.
    pub imported: u64,
    /// Items reclaimed because their TTL elapsed (lazily on access or by
    /// the LRU crawler).
    pub expired: u64,
}

impl StoreStats {
    /// Total `get` calls (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of `get` calls that hit (0.0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Adds another node's counters into this one, for tier-wide roll-ups
    /// in telemetry dumps. Element-wise, so it is associative and
    /// commutative like the histogram merge.
    pub fn merge(&mut self, other: &StoreStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.sets += other.sets;
        self.evictions += other.evictions;
        self.deletes += other.deletes;
        self.imported += other.imported;
        self.expired += other.expired;
    }
}

#[derive(Debug, Clone)]
struct Slot {
    item: Option<ItemMeta>,
    prev: u32,
    next: u32,
}

/// Memoized result of [`SlabStore::median_hotness`], invalidated by the
/// class's MRU-list version counter.
///
/// The Master's §III-C scoring crawls every class's median once per
/// decision round; between rounds most classes have not changed, so the
/// O(n/2) list walk is paid once per *mutation epoch* instead of once per
/// probe. A `Mutex` (never contended: one lock per cache probe, no
/// blocking inside) rather than a `Cell` keeps the store `Sync`, which the
/// parallel migration planner relies on to share `&CacheTier` across
/// worker threads.
#[derive(Debug, Default)]
struct MedianCache(std::sync::Mutex<Option<(u64, Option<Hotness>)>>);

impl MedianCache {
    fn get(&self, version: u64) -> Option<Option<Hotness>> {
        let cached = self.0.lock().expect("median cache lock");
        match *cached {
            Some((v, median)) if v == version => Some(median),
            _ => None,
        }
    }

    fn put(&self, version: u64, median: Option<Hotness>) {
        *self.0.lock().expect("median cache lock") = Some((version, median));
    }
}

impl Clone for MedianCache {
    fn clone(&self) -> Self {
        MedianCache(std::sync::Mutex::new(
            *self.0.lock().expect("median cache lock"),
        ))
    }
}

#[derive(Debug, Clone)]
struct ClassState {
    chunks_per_page: u64,
    slots: Vec<Slot>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    len: u64,
    pages: u64,
    bytes_used: u64,
    /// Evictions + allocation failures since the pressure counter was last
    /// read (drives the slab rebalancer's recipient choice).
    pressure: u64,
    /// Bumped on every MRU-list mutation (link/unlink); all list surgery
    /// funnels through `unlink`/`push_front`/`push_back`, so a stale
    /// version is proof the list — and its median — is unchanged.
    /// (`move_slot` relocates a chunk without reordering the list, so it
    /// does not bump.)
    version: u64,
    /// Version-stamped memo of the class's median hotness.
    median: MedianCache,
}

impl ClassState {
    fn new(chunks_per_page: u64) -> Self {
        ClassState {
            chunks_per_page,
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
            pages: 0,
            bytes_used: 0,
            pressure: 0,
            version: 0,
            median: MedianCache::default(),
        }
    }

    fn unlink(&mut self, idx: u32) {
        self.version += 1;
        let (prev, next) = {
            let s = &self.slots[idx as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[idx as usize].prev = NIL;
        self.slots[idx as usize].next = NIL;
    }

    fn push_front(&mut self, idx: u32) {
        self.version += 1;
        self.slots[idx as usize].prev = NIL;
        self.slots[idx as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn push_back(&mut self, idx: u32) {
        self.version += 1;
        self.slots[idx as usize].next = NIL;
        self.slots[idx as usize].prev = self.tail;
        if self.tail != NIL {
            self.slots[self.tail as usize].next = idx;
        }
        self.tail = idx;
        if self.head == NIL {
            self.head = idx;
        }
    }

    /// Adds one page worth of empty chunks.
    fn add_page(&mut self) {
        let start = self.slots.len() as u32;
        for i in 0..self.chunks_per_page {
            self.slots.push(Slot {
                item: None,
                prev: NIL,
                next: NIL,
            });
            self.free.push(start + i as u32);
        }
        self.pages += 1;
    }
}

/// A single Memcached node's storage engine.
///
/// See the [crate-level documentation](crate) for the model. All operations
/// take the current simulated time explicitly; the store has no internal
/// clock.
#[derive(Debug, Clone)]
pub struct SlabStore {
    classes: SizeClasses,
    class_states: Vec<ClassState>,
    // Keyed lookups run once per simulated request item, so the index uses
    // the deterministic integer hasher rather than SipHash: several times
    // cheaper on u64 keys, and placement is identical across runs and
    // platforms (std's RandomState is neither).
    index: FastIntMap<KeyId, (u16, u32)>,
    pages_total: u64,
    pages_used: u64,
    stats: StoreStats,
}

impl SlabStore {
    /// Creates an empty store.
    ///
    /// # Panics
    ///
    /// Panics if the configured memory is smaller than one page.
    pub fn new(config: StoreConfig) -> Self {
        let pages_total = config.memory.as_u64() / ByteSize::PAGE.as_u64();
        assert!(pages_total > 0, "store memory below one 1MB page");
        let class_states = config
            .classes
            .ids()
            .map(|id| ClassState::new(config.classes.chunks_per_page(id)))
            .collect();
        SlabStore {
            classes: config.classes,
            class_states,
            index: FastIntMap::default(),
            pages_total,
            pages_used: 0,
            stats: StoreStats::default(),
        }
    }

    /// The size-class ladder in use.
    pub fn classes(&self) -> &SizeClasses {
        &self.classes
    }

    /// Total pages of memory this store may use.
    pub fn pages_total(&self) -> u64 {
        self.pages_total
    }

    /// Pages currently assigned to classes.
    pub fn pages_used(&self) -> u64 {
        self.pages_used
    }

    /// Pages assigned to one class.
    pub fn pages_of_class(&self, id: ClassId) -> u64 {
        self.class_states[id.0 as usize].pages
    }

    /// Number of items resident in one class.
    pub fn len_of_class(&self, id: ClassId) -> u64 {
        self.class_states[id.0 as usize].len
    }

    /// Total resident items.
    pub fn len(&self) -> u64 {
        self.index.len() as u64
    }

    /// Whether the store holds no items.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Bytes of item payload currently resident (footprints, not chunks).
    pub fn bytes_used(&self) -> ByteSize {
        ByteSize(self.class_states.iter().map(|c| c.bytes_used).sum())
    }

    /// Operation counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// For each class, the fraction of this store's *used* pages assigned to
    /// it — the weight `w_b` in the paper's node-scoring formula (§III-C).
    pub fn page_weights(&self) -> Vec<(ClassId, f64)> {
        let used = self.pages_used.max(1) as f64;
        self.classes
            .ids()
            .map(|id| (id, self.class_states[id.0 as usize].pages as f64 / used))
            .collect()
    }

    /// Looks up a key, refreshing its MRU position and timestamp on hit.
    ///
    /// An item whose TTL has elapsed is reclaimed lazily here and reported
    /// as a miss (Memcached's lazy-expiry semantics).
    pub fn get(&mut self, key: KeyId, now: SimTime) -> Option<ItemMeta> {
        match self.index.get(&key).copied() {
            Some((class, idx)) => {
                if self.class_states[class as usize].slots[idx as usize]
                    .item
                    .expect("indexed slot is occupied")
                    .is_expired(now)
                {
                    self.remove_entry(key);
                    self.stats.expired += 1;
                    self.stats.misses += 1;
                    return None;
                }
                self.stats.hits += 1;
                let state = &mut self.class_states[class as usize];
                state.unlink(idx);
                state.push_front(idx);
                let item = state.slots[idx as usize]
                    .item
                    .as_mut()
                    .expect("indexed slot is occupied");
                item.last_access = now;
                Some(*item)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Looks up a key without disturbing MRU order or counters.
    pub fn peek(&self, key: KeyId) -> Option<ItemMeta> {
        let (class, idx) = self.index.get(&key).copied()?;
        self.class_states[class as usize].slots[idx as usize].item
    }

    /// Whether a key is resident.
    pub fn contains(&self, key: KeyId) -> bool {
        self.index.contains_key(&key)
    }

    /// Inserts or updates a key, moving it to the MRU head.
    ///
    /// # Errors
    ///
    /// * [`ElmemError::ItemTooLarge`] if the footprint exceeds the largest
    ///   chunk;
    /// * [`ElmemError::OutOfMemory`] if no free chunk, free page, or
    ///   evictable item exists in the needed class.
    pub fn set(&mut self, key: KeyId, value_size: u32, now: SimTime) -> Result<(), ElmemError> {
        self.set_item(ItemMeta::new(key, value_size, now))
    }

    /// Inserts or updates a key with a time-to-live (Memcached `exptime`).
    ///
    /// # Errors
    ///
    /// Same as [`set`](Self::set).
    pub fn set_with_ttl(
        &mut self,
        key: KeyId,
        value_size: u32,
        now: SimTime,
        ttl: SimTime,
    ) -> Result<(), ElmemError> {
        self.set_item(ItemMeta::with_ttl(key, value_size, now, ttl))
    }

    /// Memcached's `add`: stores only if the key is absent (or expired).
    /// Returns whether the value was stored.
    ///
    /// # Errors
    ///
    /// Same as [`set`](Self::set).
    pub fn add(&mut self, key: KeyId, value_size: u32, now: SimTime) -> Result<bool, ElmemError> {
        if self.peek_live(key, now).is_some() {
            return Ok(false);
        }
        self.set(key, value_size, now)?;
        Ok(true)
    }

    /// Memcached's `replace`: stores only if the key is present (and not
    /// expired). Returns whether the value was stored.
    ///
    /// # Errors
    ///
    /// Same as [`set`](Self::set).
    pub fn replace(
        &mut self,
        key: KeyId,
        value_size: u32,
        now: SimTime,
    ) -> Result<bool, ElmemError> {
        if self.peek_live(key, now).is_none() {
            return Ok(false);
        }
        self.set(key, value_size, now)?;
        Ok(true)
    }

    /// Memcached's `cas` (check-and-set): stores only if the item's current
    /// MRU timestamp equals `expected_last_access` — the store's analogue of
    /// the CAS token, which changes on every write or touch. Returns whether
    /// the value was stored.
    ///
    /// # Errors
    ///
    /// Same as [`set`](Self::set).
    pub fn cas(
        &mut self,
        key: KeyId,
        value_size: u32,
        now: SimTime,
        expected_last_access: SimTime,
    ) -> Result<bool, ElmemError> {
        match self.peek_live(key, now) {
            Some(item) if item.last_access == expected_last_access => {
                self.set(key, value_size, now)?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Like [`peek`](Self::peek) but treating an expired item as absent
    /// (without reclaiming it).
    pub fn peek_live(&self, key: KeyId, now: SimTime) -> Option<ItemMeta> {
        self.peek(key).filter(|item| !item.is_expired(now))
    }

    fn set_item(&mut self, new_item: ItemMeta) -> Result<(), ElmemError> {
        let ItemMeta {
            key,
            value_size,
            last_access: now,
            expires,
        } = new_item;
        let footprint = item_footprint(value_size);
        let class = self
            .classes
            .class_for(footprint)
            .ok_or(ElmemError::ItemTooLarge {
                item_bytes: footprint,
                max_chunk_bytes: self.classes.max_chunk(),
            })?;

        if let Some((old_class, idx)) = self.index.get(&key).copied() {
            if old_class == class.0 {
                // Update in place.
                let state = &mut self.class_states[old_class as usize];
                state.unlink(idx);
                state.push_front(idx);
                let item = state.slots[idx as usize]
                    .item
                    .as_mut()
                    .expect("indexed slot is occupied");
                state.bytes_used -= item.footprint();
                item.value_size = value_size;
                item.last_access = now;
                item.expires = expires;
                state.bytes_used += footprint;
                self.stats.sets += 1;
                return Ok(());
            }
            // Size-class change: remove, then insert fresh below.
            self.remove_entry(key);
        }

        let idx = self.alloc_slot(class)?;
        let state = &mut self.class_states[class.0 as usize];
        state.slots[idx as usize].item = Some(ItemMeta {
            key,
            value_size,
            last_access: now,
            expires,
        });
        state.push_front(idx);
        state.len += 1;
        state.bytes_used += footprint;
        self.index.insert(key, (class.0, idx));
        self.stats.sets += 1;
        Ok(())
    }

    /// Refreshes a key's TTL and MRU position without rewriting the value
    /// (Memcached's `touch` command). Returns the refreshed metadata, or
    /// `None` if the key is absent or already expired.
    pub fn touch(&mut self, key: KeyId, now: SimTime, ttl: SimTime) -> Option<ItemMeta> {
        self.get(key, now)?;
        let (class, idx) = self.index.get(&key).copied()?;
        let item = self.class_states[class as usize].slots[idx as usize]
            .item
            .as_mut()
            .expect("indexed slot is occupied");
        item.expires = now.checked_add(ttl).unwrap_or(SimTime::MAX);
        Some(*item)
    }

    /// Drops every item (Memcached's `flush_all`), keeping page
    /// assignments (real Memcached never returns pages either).
    pub fn flush_all(&mut self) {
        let keys: Vec<KeyId> = self.index.keys().copied().collect();
        for key in keys {
            self.remove_entry(key);
            self.stats.deletes += 1;
        }
    }

    /// One bounded pass of the LRU crawler (the mechanism behind the
    /// paper's timestamp-dump patch, §V-A1): walks each class from the
    /// cold end reclaiming expired items, visiting at most `budget` items
    /// in total. Returns the number reclaimed.
    pub fn crawl_expired(&mut self, now: SimTime, budget: u64) -> u64 {
        let mut visited = 0u64;
        let mut reclaimed = 0u64;
        let class_ids: Vec<ClassId> = self.classes.ids().collect();
        for class in class_ids {
            let mut cursor = self.class_states[class.0 as usize].tail;
            while cursor != NIL && visited < budget {
                let slot = &self.class_states[class.0 as usize].slots[cursor as usize];
                let item = slot.item.expect("linked slot is occupied");
                let prev = slot.prev;
                visited += 1;
                if item.is_expired(now) {
                    self.remove_entry(item.key);
                    self.stats.expired += 1;
                    reclaimed += 1;
                }
                cursor = prev;
            }
            if visited >= budget {
                break;
            }
        }
        reclaimed
    }

    /// Removes a key; returns whether it was present.
    pub fn delete(&mut self, key: KeyId) -> bool {
        let removed = self.remove_entry(key).is_some();
        if removed {
            self.stats.deletes += 1;
        }
        removed
    }

    fn remove_entry(&mut self, key: KeyId) -> Option<ItemMeta> {
        let (class, idx) = self.index.remove(&key)?;
        let state = &mut self.class_states[class as usize];
        state.unlink(idx);
        let item = state.slots[idx as usize]
            .item
            .take()
            .expect("indexed slot is occupied");
        state.free.push(idx);
        state.len -= 1;
        state.bytes_used -= item.footprint();
        Some(item)
    }

    /// Evicts the LRU tail of `class`. Returns the evicted item, or `None`
    /// if the class is empty.
    pub fn evict_lru(&mut self, class: ClassId) -> Option<ItemMeta> {
        let tail = self.class_states[class.0 as usize].tail;
        if tail == NIL {
            return None;
        }
        let key = self.class_states[class.0 as usize].slots[tail as usize]
            .item
            .as_ref()
            .expect("tail slot is occupied")
            .key;
        let item = self.remove_entry(key);
        self.stats.evictions += 1;
        self.class_states[class.0 as usize].pressure += 1;
        item
    }

    fn alloc_slot(&mut self, class: ClassId) -> Result<u32, ElmemError> {
        let ci = class.0 as usize;
        if let Some(idx) = self.class_states[ci].free.pop() {
            return Ok(idx);
        }
        if self.pages_used < self.pages_total {
            self.class_states[ci].add_page();
            self.pages_used += 1;
            return Ok(self.class_states[ci]
                .free
                .pop()
                .expect("fresh page provides free chunks"));
        }
        // Evict from the same class (Memcached semantics).
        if self.evict_lru(class).is_some() {
            return Ok(self.class_states[ci]
                .free
                .pop()
                .expect("eviction frees a chunk"));
        }
        self.class_states[ci].pressure += 1;
        Err(ElmemError::OutOfMemory)
    }

    /// Like [`Self::alloc_slot`] but never evicts; `None` when the class is
    /// at capacity and no free pages remain.
    fn alloc_slot_no_evict(&mut self, class: ClassId) -> Option<u32> {
        let ci = class.0 as usize;
        if let Some(idx) = self.class_states[ci].free.pop() {
            return Some(idx);
        }
        if self.pages_used < self.pages_total {
            self.class_states[ci].add_page();
            self.pages_used += 1;
            return self.class_states[ci].free.pop();
        }
        None
    }

    /// Free chunks currently available in a class.
    pub fn free_chunks_of_class(&self, id: ClassId) -> u64 {
        self.class_states[id.0 as usize].free.len() as u64
    }

    /// Eviction/allocation-failure pressure accumulated by a class since
    /// the counters were last reset (see the `rebalance` module).
    pub fn eviction_pressure(&self, id: ClassId) -> u64 {
        self.class_states[id.0 as usize].pressure
    }

    /// Resets all per-class pressure counters.
    pub fn reset_eviction_pressure(&mut self) {
        for state in &mut self.class_states {
            state.pressure = 0;
        }
    }

    /// Moves one page of chunks from class `from` to class `to`
    /// (Memcached's slab rebalancer). The donor evicts its coldest items to
    /// vacate one page's worth of chunks; survivors are compacted so the
    /// physical page can be handed over.
    ///
    /// Returns the number of items evicted from the donor.
    ///
    /// # Errors
    ///
    /// [`ElmemError::InvalidConfig`] if `from == to`;
    /// [`ElmemError::InvalidScaling`] if the donor has no page to give.
    pub fn reassign_page(&mut self, from: ClassId, to: ClassId) -> Result<u64, ElmemError> {
        if from == to {
            return Err(ElmemError::InvalidConfig(
                "cannot reassign a page to the same class".to_string(),
            ));
        }
        if self.class_states[from.0 as usize].pages == 0 {
            return Err(ElmemError::InvalidScaling(format!(
                "{from} has no page to donate"
            )));
        }
        let cpp = self.class_states[from.0 as usize].chunks_per_page;
        // 1. Evict the donor's coldest items until one page's worth of
        //    chunks is free.
        let mut evicted = 0u64;
        while (self.class_states[from.0 as usize].free.len() as u64) < cpp {
            if self.evict_lru(from).is_none() {
                break;
            }
            evicted += 1;
        }
        // 2. Compact: relocate survivors out of the last page's slot range.
        let fi = from.0 as usize;
        let cutoff = self.class_states[fi].slots.len() - cpp as usize;
        // Free slots below the cutoff are the relocation targets.
        let mut targets: Vec<u32> = self.class_states[fi]
            .free
            .iter()
            .copied()
            .filter(|&i| (i as usize) < cutoff)
            .collect();
        for idx in cutoff as u32..self.class_states[fi].slots.len() as u32 {
            if self.class_states[fi].slots[idx as usize].item.is_none() {
                continue;
            }
            let dest = targets.pop().expect("enough free slots below cutoff");
            self.move_slot(from, idx, dest);
        }
        // 3. Shrink the donor and grow the recipient.
        {
            let state = &mut self.class_states[fi];
            state.free.retain(|&i| (i as usize) < cutoff);
            state.slots.truncate(cutoff);
            state.pages -= 1;
        }
        self.pages_used -= 1;
        // Recipient takes the page (add_page bumps its page count).
        self.class_states[to.0 as usize].add_page();
        self.pages_used += 1;
        Ok(evicted)
    }

    /// Moves an occupied slot to a free slot within the same class,
    /// preserving its MRU position.
    fn move_slot(&mut self, class: ClassId, src: u32, dst: u32) {
        let ci = class.0 as usize;
        // Remove dst from the free list (the caller popped it from a copy).
        self.class_states[ci].free.retain(|&i| i != dst);
        let (item, prev, next) = {
            let slot = &self.class_states[ci].slots[src as usize];
            (
                slot.item.expect("source slot is occupied"),
                slot.prev,
                slot.next,
            )
        };
        {
            let state = &mut self.class_states[ci];
            state.slots[dst as usize].item = Some(item);
            state.slots[dst as usize].prev = prev;
            state.slots[dst as usize].next = next;
            if prev != NIL {
                state.slots[prev as usize].next = dst;
            } else {
                state.head = dst;
            }
            if next != NIL {
                state.slots[next as usize].prev = dst;
            } else {
                state.tail = dst;
            }
            state.slots[src as usize] = Slot {
                item: None,
                prev: NIL,
                next: NIL,
            };
            state.free.push(src);
        }
        self.index.insert(item.key, (class.0, dst));
    }

    /// Iterates a class's items in MRU (hottest-first) order.
    pub fn iter_class_mru(&self, class: ClassId) -> ClassMruIter<'_> {
        ClassMruIter {
            state: &self.class_states[class.0 as usize],
            cursor: self.class_states[class.0 as usize].head,
        }
    }

    /// Iterates all resident items (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = ItemMeta> + '_ {
        self.index.keys().map(|k| self.peek(*k).expect("indexed"))
    }

    /// The MRU timestamps of a class in MRU order — the paper's
    /// "timestamp dump" Memcached modification (§V-A1).
    pub fn dump_class(&self, class: ClassId) -> ClassDump {
        let items: Vec<ItemMeta> = self.iter_class_mru(class).collect();
        ClassDump::new(class, items)
    }

    /// Dumps every non-empty class.
    pub fn dump_metadata(&self) -> MetadataDump {
        let dumps = self
            .classes
            .ids()
            .filter(|id| self.len_of_class(*id) > 0)
            .map(|id| self.dump_class(id))
            .collect();
        MetadataDump::new(dumps)
    }

    /// Median hotness of a class's MRU list (the statistic the Master
    /// compares across nodes when choosing which node to retire, §III-C).
    ///
    /// Returns `None` for an empty class.
    ///
    /// The O(n/2) list walk is memoized against the class's mutation
    /// version: repeated probes of an unchanged class (the Master scores
    /// every node's every class per decision round) return the cached
    /// median without touching the list.
    pub fn median_hotness(&self, class: ClassId) -> Option<Hotness> {
        let state = &self.class_states[class.0 as usize];
        if state.len == 0 {
            return None;
        }
        if let Some(median) = state.median.get(state.version) {
            return median;
        }
        let target = (state.len / 2) as usize;
        let median = self.iter_class_mru(class).nth(target).map(|i| i.hotness());
        state.median.put(state.version, median);
        median
    }

    /// Imports migrated items into a class (the paper's batch-import
    /// Memcached modification, §V-A1).
    ///
    /// `incoming` must be sorted hottest-first. Items that collide with a
    /// resident key keep whichever copy is hotter. If the class overflows
    /// its chunk capacity (and no free pages remain), the coldest items of
    /// the merged population are evicted — by FuseCache's construction these
    /// are always colder than the migrated ones.
    ///
    /// Returns the number of items actually resident from `incoming` after
    /// the merge.
    ///
    /// # Errors
    ///
    /// [`ElmemError::InvalidConfig`] if any incoming item does not belong to
    /// `class` under this store's ladder.
    pub fn batch_import(
        &mut self,
        class: ClassId,
        incoming: &[ItemMeta],
        mode: ImportMode,
    ) -> Result<u64, ElmemError> {
        for item in incoming {
            if self.classes.class_for(item.footprint()) != Some(class) {
                return Err(ElmemError::InvalidConfig(format!(
                    "item {} (footprint {}) does not belong to {class}",
                    item.key,
                    item.footprint()
                )));
            }
        }

        // Resolve key collisions: drop incoming copies that are colder than
        // a resident copy; remove resident copies that are colder.
        let mut accepted: Vec<ItemMeta> = Vec::with_capacity(incoming.len());
        for item in incoming {
            match self.peek(item.key) {
                Some(resident) if resident.hotness() >= item.hotness() => continue,
                Some(_) => {
                    self.remove_entry(item.key);
                    accepted.push(*item);
                }
                None => accepted.push(*item),
            }
        }

        // Canonicalize to strict hotness order (the MRU list may order
        // same-instant accesses either way; see `ClassDump::new`).
        let mut resident: Vec<ItemMeta> = self.iter_class_mru(class).collect();
        resident.sort_by_key(|i| std::cmp::Reverse(i.hotness()));
        // Snapshot the accepted keys (sorted, for binary search) before the
        // merge consumes `accepted`; both import modes then build `merged`
        // by *moving* the accepted items — no clones of the batch.
        let mut incoming_keys: Vec<KeyId> = accepted.iter().map(|i| i.key).collect();
        incoming_keys.sort_unstable();
        let merged: Vec<ItemMeta> = match mode {
            ImportMode::Merge => {
                // Both inputs are hottest-first; standard 2-way merge.
                accepted.sort_by_key(|i| std::cmp::Reverse(i.hotness()));
                let mut all = Vec::with_capacity(resident.len() + accepted.len());
                let (mut i, mut j) = (0usize, 0usize);
                while i < resident.len() && j < accepted.len() {
                    if resident[i].hotness() >= accepted[j].hotness() {
                        all.push(resident[i]);
                        i += 1;
                    } else {
                        all.push(accepted[j]);
                        j += 1;
                    }
                }
                all.extend_from_slice(&resident[i..]);
                all.extend_from_slice(&accepted[j..]);
                all
            }
            ImportMode::Prepend => {
                let mut all = accepted;
                all.extend_from_slice(&resident);
                all
            }
        };

        // Rebuild the class list: clear it, then grow capacity and insert
        // in order, evicting the overflow (the tail of `merged`).
        for item in &resident {
            self.remove_entry(item.key);
        }
        let mut kept_incoming = 0u64;
        let mut inserted = 0u64;
        for item in &merged {
            match self.alloc_slot_no_evict(class) {
                Some(idx) => {
                    let state = &mut self.class_states[class.0 as usize];
                    state.slots[idx as usize].item = Some(*item);
                    state.push_back(idx);
                    state.len += 1;
                    state.bytes_used += item.footprint();
                    self.index.insert(item.key, (class.0, idx));
                    inserted += 1;
                    if incoming_keys.binary_search(&item.key).is_ok() {
                        kept_incoming += 1;
                        self.stats.imported += 1;
                    }
                }
                None => break, // class cannot grow further; rest is overflow
            }
        }
        // Count the dropped overflow as evictions.
        self.stats.evictions += merged.len() as u64 - inserted;
        Ok(kept_incoming)
    }

    /// Exhaustively checks the store's internal invariants: per-class slot
    /// accounting (every chunk is exactly occupied or free), MRU-list
    /// structure (forward and backward walks agree with the length
    /// counter), byte and page conservation, and index ↔ slot agreement.
    ///
    /// This is the slab/byte-conservation leg of the chaos engine's
    /// invariant checker (DESIGN.md §12); it is O(items) and intended for
    /// post-run audits, not the request path.
    ///
    /// # Errors
    ///
    /// [`ElmemError::InvariantViolation`] naming the first broken invariant
    /// (checked in a deterministic order).
    pub fn audit(&self) -> Result<(), ElmemError> {
        let fail = |msg: String| Err(ElmemError::InvariantViolation(msg));
        let mut total_len = 0u64;
        let mut total_pages = 0u64;
        for (ci, state) in self.class_states.iter().enumerate() {
            let occupied = state.slots.iter().filter(|s| s.item.is_some()).count() as u64;
            if occupied != state.len {
                return fail(format!(
                    "class {ci}: len counter {} but {occupied} occupied slots",
                    state.len
                ));
            }
            if state.free.len() as u64 + occupied != state.slots.len() as u64 {
                return fail(format!(
                    "class {ci}: {} free + {occupied} occupied != {} slots",
                    state.free.len(),
                    state.slots.len()
                ));
            }
            let mut free_sorted: Vec<u32> = state.free.clone();
            free_sorted.sort_unstable();
            free_sorted.dedup();
            if free_sorted.len() != state.free.len() {
                return fail(format!("class {ci}: duplicate entries in free list"));
            }
            for &idx in &free_sorted {
                match state.slots.get(idx as usize) {
                    None => return fail(format!("class {ci}: free slot {idx} out of range")),
                    Some(slot) if slot.item.is_some() => {
                        return fail(format!("class {ci}: free slot {idx} is occupied"));
                    }
                    Some(_) => {}
                }
            }
            if state.slots.len() as u64 != state.pages * state.chunks_per_page {
                return fail(format!(
                    "class {ci}: {} slots but {} pages of {} chunks",
                    state.slots.len(),
                    state.pages,
                    state.chunks_per_page
                ));
            }
            let bytes: u64 = state
                .slots
                .iter()
                .filter_map(|s| s.item.as_ref())
                .map(|i| i.footprint())
                .sum();
            if bytes != state.bytes_used {
                return fail(format!(
                    "class {ci}: bytes_used {} but item footprints sum to {bytes}",
                    state.bytes_used
                ));
            }
            // Forward MRU walk: every linked slot occupied, prev pointers
            // mirror next pointers, and the walk covers exactly `len` items.
            let mut walked = 0u64;
            let mut prev = NIL;
            let mut cursor = state.head;
            while cursor != NIL {
                let slot = match state.slots.get(cursor as usize) {
                    Some(s) => s,
                    None => return fail(format!("class {ci}: MRU cursor {cursor} out of range")),
                };
                if slot.item.is_none() {
                    return fail(format!("class {ci}: MRU-linked slot {cursor} is empty"));
                }
                if slot.prev != prev {
                    return fail(format!(
                        "class {ci}: slot {cursor} prev {} != expected {prev}",
                        slot.prev
                    ));
                }
                walked += 1;
                if walked > state.len {
                    return fail(format!("class {ci}: MRU list longer than len (cycle?)"));
                }
                prev = cursor;
                cursor = slot.next;
            }
            if walked != state.len {
                return fail(format!(
                    "class {ci}: MRU walk covered {walked} of {} items",
                    state.len
                ));
            }
            if state.tail != prev {
                return fail(format!(
                    "class {ci}: tail {} but MRU walk ended at {prev}",
                    state.tail
                ));
            }
            total_len += state.len;
            total_pages += state.pages;
        }
        if total_pages != self.pages_used {
            return fail(format!(
                "pages_used {} but classes hold {total_pages}",
                self.pages_used
            ));
        }
        if self.pages_used > self.pages_total {
            return fail(format!(
                "pages_used {} exceeds pages_total {}",
                self.pages_used, self.pages_total
            ));
        }
        if self.index.len() as u64 != total_len {
            return fail(format!(
                "index holds {} keys but classes hold {total_len} items",
                self.index.len()
            ));
        }
        // Index → slot agreement. The index iterates in hash order, so any
        // violations are collected and the smallest key reported to keep
        // the message deterministic.
        let mut bad_key: Option<(KeyId, String)> = None;
        for (&key, &(class, idx)) in self.index.iter() {
            let problem = match self
                .class_states
                .get(class as usize)
                .and_then(|s| s.slots.get(idx as usize))
            {
                None => Some(format!("{key} maps to out-of-range slot {class}/{idx}")),
                Some(slot) => match slot.item {
                    None => Some(format!("{key} maps to empty slot {class}/{idx}")),
                    Some(item) if item.key != key => {
                        Some(format!("{key} maps to slot holding {}", item.key))
                    }
                    Some(_) => None,
                },
            };
            if let Some(msg) = problem {
                if bad_key.as_ref().is_none_or(|(k, _)| key < *k) {
                    bad_key = Some((key, msg));
                }
            }
        }
        if let Some((_, msg)) = bad_key {
            return fail(format!("index: {msg}"));
        }
        Ok(())
    }

    /// Deliberately breaks the byte accounting of the first non-empty
    /// class. Exists so cross-crate tests can prove [`SlabStore::audit`]
    /// catches corruption; never call it outside tests.
    #[doc(hidden)]
    pub fn corrupt_bytes_used_for_tests(&mut self) {
        if let Some(state) = self.class_states.iter_mut().find(|s| s.len > 0) {
            state.bytes_used += 1;
        }
    }
}

/// Iterator over a class's items in MRU order. Created by
/// [`SlabStore::iter_class_mru`].
#[derive(Debug)]
pub struct ClassMruIter<'a> {
    state: &'a ClassState,
    cursor: u32,
}

impl Iterator for ClassMruIter<'_> {
    type Item = ItemMeta;

    fn next(&mut self) -> Option<ItemMeta> {
        if self.cursor == NIL {
            return None;
        }
        let slot = &self.state.slots[self.cursor as usize];
        self.cursor = slot.next;
        Some(slot.item.expect("linked slot is occupied"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_lookups_and_hit_rate() {
        let s = StoreStats {
            hits: 3,
            misses: 1,
            ..StoreStats::default()
        };
        assert_eq!(s.lookups(), 4);
        assert_eq!(s.hit_rate(), 0.75);
        assert_eq!(StoreStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn stats_merge_is_elementwise() {
        let a = StoreStats {
            hits: 1,
            misses: 2,
            sets: 3,
            evictions: 4,
            deletes: 5,
            imported: 6,
            expired: 7,
        };
        let b = StoreStats {
            hits: 10,
            misses: 20,
            sets: 30,
            evictions: 40,
            deletes: 50,
            imported: 60,
            expired: 70,
        };
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is commutative");
        assert_eq!(ab.hits, 11);
        assert_eq!(ab.expired, 77);
        assert_eq!(ab.lookups(), 33);
    }

    fn small_store() -> SlabStore {
        SlabStore::new(StoreConfig {
            memory: ByteSize::from_mib(2),
            classes: SizeClasses::new(128, 2.0, 1024),
        })
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn set_get_roundtrip() {
        let mut s = small_store();
        s.set(KeyId(1), 10, t(1)).unwrap();
        let item = s.get(KeyId(1), t(2)).unwrap();
        assert_eq!(item.key, KeyId(1));
        assert_eq!(item.value_size, 10);
        assert_eq!(item.last_access, t(2));
        assert_eq!(s.stats().hits, 1);
        assert_eq!(s.stats().sets, 1);
    }

    #[test]
    fn miss_counts() {
        let mut s = small_store();
        assert!(s.get(KeyId(404), t(1)).is_none());
        assert_eq!(s.stats().misses, 1);
    }

    #[test]
    fn peek_does_not_touch() {
        let mut s = small_store();
        s.set(KeyId(1), 10, t(1)).unwrap();
        let before = s.peek(KeyId(1)).unwrap();
        assert_eq!(before.last_access, t(1));
        let hits = s.stats().hits;
        let _ = s.peek(KeyId(1));
        assert_eq!(s.stats().hits, hits);
    }

    #[test]
    fn mru_order_follows_access() {
        let mut s = small_store();
        for k in 0..5 {
            s.set(KeyId(k), 10, t(k)).unwrap();
        }
        // 4 is hottest. Touch 0 → becomes hottest.
        s.get(KeyId(0), t(10)).unwrap();
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        let order: Vec<u64> = s.iter_class_mru(class).map(|i| i.key.0).collect();
        assert_eq!(order, vec![0, 4, 3, 2, 1]);
    }

    #[test]
    fn mru_list_is_hotness_sorted_under_normal_ops() {
        let mut s = small_store();
        for k in 0..20 {
            s.set(KeyId(k), 10, t(k)).unwrap();
        }
        for k in (0..20).step_by(3) {
            s.get(KeyId(k), t(100 + k)).unwrap();
        }
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        let hot: Vec<Hotness> = s.iter_class_mru(class).map(|i| i.hotness()).collect();
        for w in hot.windows(2) {
            assert!(w[0] >= w[1], "MRU list out of order");
        }
    }

    #[test]
    fn update_same_class_updates_in_place() {
        let mut s = small_store();
        s.set(KeyId(1), 10, t(1)).unwrap();
        s.set(KeyId(1), 20, t(2)).unwrap();
        assert_eq!(s.len(), 1);
        let item = s.peek(KeyId(1)).unwrap();
        assert_eq!(item.value_size, 20);
        assert_eq!(item.last_access, t(2));
    }

    #[test]
    fn update_changes_class_when_size_grows() {
        let mut s = small_store();
        s.set(KeyId(1), 10, t(1)).unwrap();
        let small = s.classes().class_for(item_footprint(10)).unwrap();
        s.set(KeyId(1), 500, t(2)).unwrap();
        let large = s.classes().class_for(item_footprint(500)).unwrap();
        assert_ne!(small, large);
        assert_eq!(s.len_of_class(small), 0);
        assert_eq!(s.len_of_class(large), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn delete_removes() {
        let mut s = small_store();
        s.set(KeyId(1), 10, t(1)).unwrap();
        assert!(s.delete(KeyId(1)));
        assert!(!s.delete(KeyId(1)));
        assert!(!s.contains(KeyId(1)));
        assert_eq!(s.len(), 0);
        assert_eq!(s.stats().deletes, 1);
    }

    #[test]
    fn item_too_large_rejected() {
        let mut s = small_store();
        let err = s.set(KeyId(1), 10_000, t(1)).unwrap_err();
        assert!(matches!(err, ElmemError::ItemTooLarge { .. }));
    }

    #[test]
    fn lru_eviction_within_class() {
        // 1 page store: 1MiB / 128B chunks = 8192 chunks in smallest class.
        let mut s = SlabStore::new(StoreConfig {
            memory: ByteSize::from_mib(1),
            classes: SizeClasses::new(128, 2.0, 1024),
        });
        let cap = ByteSize::PAGE.as_u64() / 128;
        for k in 0..cap + 10 {
            s.set(KeyId(k), 10, t(k)).unwrap();
        }
        assert_eq!(s.len(), cap);
        assert_eq!(s.stats().evictions, 10);
        // The 10 oldest were evicted.
        for k in 0..10 {
            assert!(!s.contains(KeyId(k)), "key {k} should be evicted");
        }
        assert!(s.contains(KeyId(10)));
    }

    #[test]
    fn eviction_victim_is_lru_not_insertion_order() {
        let mut s = SlabStore::new(StoreConfig {
            memory: ByteSize::from_mib(1),
            classes: SizeClasses::new(128, 2.0, 1024),
        });
        let cap = ByteSize::PAGE.as_u64() / 128;
        for k in 0..cap {
            s.set(KeyId(k), 10, t(k)).unwrap();
        }
        // Touch key 0 so key 1 becomes LRU.
        s.get(KeyId(0), t(10_000)).unwrap();
        s.set(KeyId(999_999), 10, t(10_001)).unwrap();
        assert!(s.contains(KeyId(0)));
        assert!(!s.contains(KeyId(1)));
    }

    #[test]
    fn pages_assigned_on_demand_across_classes() {
        let mut s = small_store();
        assert_eq!(s.pages_used(), 0);
        s.set(KeyId(1), 10, t(1)).unwrap(); // small class
        assert_eq!(s.pages_used(), 1);
        s.set(KeyId(2), 900, t(1)).unwrap(); // large class
        assert_eq!(s.pages_used(), 2);
        let weights = s.page_weights();
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_memory_when_class_empty_and_no_pages() {
        // 1 page total, used by the small class; large class cannot allocate.
        let mut s = SlabStore::new(StoreConfig {
            memory: ByteSize::from_mib(1),
            classes: SizeClasses::new(128, 2.0, 1024),
        });
        s.set(KeyId(1), 10, t(1)).unwrap();
        let err = s.set(KeyId(2), 900, t(2)).unwrap_err();
        assert_eq!(err, ElmemError::OutOfMemory);
    }

    #[test]
    fn median_hotness_is_middle_of_list() {
        let mut s = small_store();
        for k in 0..5 {
            s.set(KeyId(k), 10, t(k + 1)).unwrap();
        }
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        // MRU order: 4,3,2,1,0 → median (index 2) is key 2 at t=3.
        let med = s.median_hotness(class).unwrap();
        assert_eq!(med.time(), t(3));
    }

    #[test]
    fn median_hotness_empty_class() {
        let s = small_store();
        assert_eq!(s.median_hotness(ClassId(0)), None);
    }

    #[test]
    fn median_cache_tracks_mutations() {
        let mut s = small_store();
        for k in 0..9 {
            s.set(KeyId(k), 10, t(k + 1)).unwrap();
        }
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        let before = s.median_hotness(class).unwrap();
        // A cached re-probe of the unchanged class agrees with itself.
        assert_eq!(s.median_hotness(class), Some(before));
        // Any access moves the list; the cached value must be dropped and
        // the fresh walk must agree with a never-cached store.
        s.get(KeyId(0), t(100)).unwrap();
        let after = s.median_hotness(class).unwrap();
        assert_ne!(after, before, "touching the coldest item moves the median");
        let mut fresh = small_store();
        for k in 0..9 {
            fresh.set(KeyId(k), 10, t(k + 1)).unwrap();
        }
        fresh.get(KeyId(0), t(100)).unwrap();
        assert_eq!(fresh.median_hotness(class), Some(after));
    }

    #[test]
    fn median_cache_survives_clone() {
        let mut s = small_store();
        for k in 0..5 {
            s.set(KeyId(k), 10, t(k + 1)).unwrap();
        }
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        let med = s.median_hotness(class);
        let clone = s.clone();
        assert_eq!(clone.median_hotness(class), med);
        // Mutating the clone must not disturb the original's answer.
        let mut clone = clone;
        clone.get(KeyId(0), t(50)).unwrap();
        assert_eq!(s.median_hotness(class), med);
    }

    #[test]
    fn dump_is_mru_ordered() {
        let mut s = small_store();
        for k in 0..10 {
            s.set(KeyId(k), 10, t(k)).unwrap();
        }
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        let dump = s.dump_class(class);
        assert_eq!(dump.items.len(), 10);
        for w in dump.items.windows(2) {
            assert!(w[0].hotness() >= w[1].hotness());
        }
    }

    #[test]
    fn dump_metadata_skips_empty_classes() {
        let mut s = small_store();
        s.set(KeyId(1), 10, t(1)).unwrap();
        let dump = s.dump_metadata();
        assert_eq!(dump.classes.len(), 1);
    }

    #[test]
    fn batch_import_merge_keeps_sorted() {
        let mut s = small_store();
        for k in 0..10 {
            s.set(KeyId(k), 10, t(2 * k)).unwrap(); // even timestamps
        }
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        let incoming: Vec<ItemMeta> = (0..5)
            .map(|i| ItemMeta {
                key: KeyId(100 + i),
                value_size: 10,
                last_access: t(2 * (9 - i) + 1), // odd, interleaving
                expires: SimTime::MAX,
            })
            .collect();
        let kept = s.batch_import(class, &incoming, ImportMode::Merge).unwrap();
        assert_eq!(kept, 5);
        let hot: Vec<Hotness> = s.iter_class_mru(class).map(|i| i.hotness()).collect();
        assert_eq!(hot.len(), 15);
        for w in hot.windows(2) {
            assert!(w[0] >= w[1], "merged list out of order");
        }
    }

    #[test]
    fn batch_import_prepend_puts_incoming_first() {
        let mut s = small_store();
        for k in 0..3 {
            s.set(KeyId(k), 10, t(100 + k)).unwrap();
        }
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        let incoming = vec![ItemMeta {
            key: KeyId(50),
            value_size: 10,
            last_access: t(1), // colder, but prepend puts it first anyway
            expires: SimTime::MAX,
        }];
        s.batch_import(class, &incoming, ImportMode::Prepend)
            .unwrap();
        let first = s.iter_class_mru(class).next().unwrap();
        assert_eq!(first.key, KeyId(50));
    }

    #[test]
    fn batch_import_evicts_overflow_coldest() {
        let mut s = SlabStore::new(StoreConfig {
            memory: ByteSize::from_mib(1),
            classes: SizeClasses::new(128, 2.0, 1024),
        });
        let cap = ByteSize::PAGE.as_u64() / 128;
        for k in 0..cap {
            s.set(KeyId(k), 10, t(k + 1)).unwrap();
        }
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        // Import `cap/2` items hotter than everything resident.
        let incoming: Vec<ItemMeta> = (0..cap / 2)
            .map(|i| ItemMeta {
                key: KeyId(1_000_000 + i),
                value_size: 10,
                last_access: t(10_000 + i),
                expires: SimTime::MAX,
            })
            .collect();
        let kept = s.batch_import(class, &incoming, ImportMode::Merge).unwrap();
        assert_eq!(kept, cap / 2);
        assert_eq!(s.len(), cap);
        // The coldest resident half is gone; hottest resident half remains.
        assert!(!s.contains(KeyId(0)));
        assert!(s.contains(KeyId(cap - 1)));
    }

    #[test]
    fn batch_import_key_collision_keeps_hotter() {
        let mut s = small_store();
        s.set(KeyId(1), 10, t(100)).unwrap();
        s.set(KeyId(2), 10, t(1)).unwrap();
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        let incoming = vec![
            ItemMeta {
                key: KeyId(1),
                value_size: 10,
                last_access: t(50), // colder than resident copy
                expires: SimTime::MAX,
            },
            ItemMeta {
                key: KeyId(2),
                value_size: 10,
                last_access: t(200), // hotter than resident copy
                expires: SimTime::MAX,
            },
        ];
        s.batch_import(class, &incoming, ImportMode::Merge).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.peek(KeyId(1)).unwrap().last_access, t(100));
        assert_eq!(s.peek(KeyId(2)).unwrap().last_access, t(200));
    }

    #[test]
    fn batch_import_rejects_wrong_class() {
        let mut s = small_store();
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        let incoming = vec![ItemMeta {
            key: KeyId(1),
            value_size: 900, // belongs to a larger class
            last_access: t(1),
            expires: SimTime::MAX,
        }];
        assert!(s.batch_import(class, &incoming, ImportMode::Merge).is_err());
    }

    #[test]
    fn evict_lru_returns_tail() {
        let mut s = small_store();
        for k in 0..3 {
            s.set(KeyId(k), 10, t(k)).unwrap();
        }
        let class = s.classes().class_for(item_footprint(10)).unwrap();
        let evicted = s.evict_lru(class).unwrap();
        assert_eq!(evicted.key, KeyId(0));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn evict_lru_empty_class_is_none() {
        let mut s = small_store();
        assert!(s.evict_lru(ClassId(0)).is_none());
    }

    #[test]
    fn bytes_used_tracks_footprints() {
        let mut s = small_store();
        s.set(KeyId(1), 10, t(1)).unwrap();
        s.set(KeyId(2), 20, t(1)).unwrap();
        assert_eq!(
            s.bytes_used().as_u64(),
            item_footprint(10) + item_footprint(20)
        );
        s.delete(KeyId(1));
        assert_eq!(s.bytes_used().as_u64(), item_footprint(20));
    }

    #[test]
    fn iter_yields_all_items() {
        let mut s = small_store();
        for k in 0..7 {
            s.set(KeyId(k), 10, t(k)).unwrap();
        }
        let mut keys: Vec<u64> = s.iter().map(|i| i.key.0).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..7).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic]
    fn zero_memory_store_rejected() {
        let _ = SlabStore::new(StoreConfig::with_memory(ByteSize::from_kib(4)));
    }

    #[test]
    fn audit_passes_through_store_lifecycle() {
        let mut s = small_store();
        s.audit().unwrap();
        for k in 0..500 {
            // A 2 MiB store has two pages; sets that land in a third class
            // legitimately fail with OutOfMemory, which must still leave
            // the store consistent.
            let _ = s.set(KeyId(k), 50 + (k as u32 % 400), t(k));
            if k % 7 == 0 {
                s.get(KeyId(k / 2), t(k)).map(|_| ()).unwrap_or(());
            }
            if k % 11 == 0 {
                s.delete(KeyId(k / 3));
            }
        }
        s.audit().unwrap();
        // Imports, rebalancing, eviction, flush: still consistent.
        let class = s.classes().class_for(item_footprint(100)).unwrap();
        let batch: Vec<ItemMeta> = (1000..1020)
            .map(|k| ItemMeta::new(KeyId(k), 100, t(600)))
            .collect();
        s.batch_import(class, &batch, ImportMode::Merge).unwrap();
        s.audit().unwrap();
        s.evict_lru(class);
        s.audit().unwrap();
        s.flush_all();
        s.audit().unwrap();
    }

    #[test]
    fn audit_detects_corruption() {
        let mut s = small_store();
        for k in 0..20 {
            s.set(KeyId(k), 50, t(k)).unwrap();
        }
        // Corrupt a byte counter behind the accessors' backs.
        let class = s.classes().class_for(item_footprint(50)).unwrap();
        s.class_states[class.0 as usize].bytes_used += 1;
        let err = s.audit().unwrap_err();
        assert!(matches!(err, ElmemError::InvariantViolation(_)), "{err}");
        assert!(err.to_string().contains("bytes_used"), "{err}");
    }
}
