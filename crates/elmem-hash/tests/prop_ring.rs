//! Property tests for the consistent hash ring.

use elmem_hash::HashRing;
use elmem_util::{KeyId, NodeId};
use proptest::prelude::*;

proptest! {
    /// Every key maps to a member node.
    #[test]
    fn placement_lands_on_member(
        n in 1u32..20,
        keys in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let ring = HashRing::new((0..n).map(NodeId), 64);
        for &k in &keys {
            let node = ring.node_for(KeyId(k)).unwrap();
            prop_assert!(ring.members().contains(&node));
        }
    }

    /// Consistency: removing one node never moves a key that did not live
    /// on the removed node.
    #[test]
    fn minimal_disruption_on_removal(
        n in 2u32..20,
        victim_sel in any::<u32>(),
        keys in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let ring = HashRing::new((0..n).map(NodeId), 64);
        let victim = NodeId(victim_sel % n);
        let smaller = ring.without(&[victim]);
        for &k in &keys {
            let before = ring.node_for(KeyId(k)).unwrap();
            let after = smaller.node_for(KeyId(k)).unwrap();
            if before != victim {
                prop_assert_eq!(before, after);
            } else {
                prop_assert_ne!(after, victim);
            }
        }
    }

    /// Adding nodes only moves keys *to* the added nodes.
    #[test]
    fn additions_only_gain_keys(
        n in 1u32..15,
        added in 1u32..5,
        keys in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let ring = HashRing::new((0..n).map(NodeId), 64);
        let new_ids: Vec<NodeId> = (n..n + added).map(NodeId).collect();
        let bigger = ring.with(&new_ids);
        for &k in &keys {
            let before = ring.node_for(KeyId(k)).unwrap();
            let after = bigger.node_for(KeyId(k)).unwrap();
            if before != after {
                prop_assert!(new_ids.contains(&after));
            }
        }
    }
}
