//! Ketama-style consistent hash ring with virtual nodes.

use elmem_util::hashutil::{combine, mix64};
use elmem_util::{KeyId, NodeId};

/// A consistent hash ring mapping keys to nodes.
///
/// Each member contributes `vnodes` points on a 64-bit ring; a key maps to
/// the owner of the first point clockwise from the key's hash. Placement
/// depends only on the membership *set* (not insertion order), so any two
/// clients — or agents hashing against a hypothetical future membership —
/// agree on placement.
///
/// # Example
///
/// ```
/// use elmem_hash::HashRing;
/// use elmem_util::{KeyId, NodeId};
///
/// let ring = HashRing::new([NodeId(0), NodeId(1)].into_iter(), 64);
/// assert_eq!(ring.len(), 2);
/// let n = ring.node_for(KeyId(7)).unwrap();
/// assert!(n == NodeId(0) || n == NodeId(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// (point, node) sorted by point.
    points: Vec<(u64, NodeId)>,
    members: Vec<NodeId>,
    vnodes: u32,
}

impl HashRing {
    /// Builds a ring over `members`, with `vnodes` virtual points each.
    ///
    /// Duplicate member ids are ignored. `vnodes` of 100–200 gives load
    /// imbalance of a few percent, comparable to libmemcached's ketama.
    ///
    /// # Panics
    ///
    /// Panics if `vnodes == 0`.
    pub fn new(members: impl Iterator<Item = NodeId>, vnodes: u32) -> Self {
        assert!(vnodes > 0, "vnodes must be positive");
        let mut uniq: Vec<NodeId> = members.collect();
        uniq.sort_unstable();
        uniq.dedup();
        let mut points = Vec::with_capacity(uniq.len() * vnodes as usize);
        for &node in &uniq {
            let node_hash = mix64(0x6e6f_6465 ^ u64::from(node.0));
            for replica in 0..vnodes {
                points.push((combine(node_hash, u64::from(replica)), node));
            }
        }
        points.sort_unstable();
        // Resolve (astronomically unlikely) point collisions deterministically
        // in favour of the smaller node id (sort already did: tuples).
        points.dedup_by_key(|p| p.0);
        HashRing {
            points,
            members: uniq,
            vnodes,
        }
    }

    /// The node responsible for `key`, or `None` if the ring is empty.
    pub fn node_for(&self, key: KeyId) -> Option<NodeId> {
        self.node_for_hash(mix64(key.0))
    }

    /// Placement by precomputed key hash.
    pub fn node_for_hash(&self, hash: u64) -> Option<NodeId> {
        if self.points.is_empty() {
            return None;
        }
        let idx = self.points.partition_point(|&(p, _)| p < hash);
        let idx = if idx == self.points.len() { 0 } else { idx };
        Some(self.points[idx].1)
    }

    /// Members of the ring, sorted by id.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Virtual points per member.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// A ring over the same members minus `removed` (used when hashing
    /// against the retained membership in migration phase 1).
    pub fn without(&self, removed: &[NodeId]) -> HashRing {
        HashRing::new(
            self.members
                .iter()
                .copied()
                .filter(|n| !removed.contains(n)),
            self.vnodes,
        )
    }

    /// A ring over the same members plus `added` (scale-out membership).
    pub fn with(&self, added: &[NodeId]) -> HashRing {
        HashRing::new(
            self.members.iter().copied().chain(added.iter().copied()),
            self.vnodes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn ring(n: u32) -> HashRing {
        HashRing::new((0..n).map(NodeId), 128)
    }

    #[test]
    fn placement_is_deterministic() {
        let a = ring(10);
        let b = ring(10);
        for k in 0..1000 {
            assert_eq!(a.node_for(KeyId(k)), b.node_for(KeyId(k)));
        }
    }

    #[test]
    fn placement_independent_of_member_order() {
        let a = HashRing::new([NodeId(0), NodeId(1), NodeId(2)].into_iter(), 64);
        let b = HashRing::new([NodeId(2), NodeId(0), NodeId(1)].into_iter(), 64);
        for k in 0..1000 {
            assert_eq!(a.node_for(KeyId(k)), b.node_for(KeyId(k)));
        }
    }

    #[test]
    fn empty_ring_returns_none() {
        let r = HashRing::new(std::iter::empty(), 8);
        assert_eq!(r.node_for(KeyId(1)), None);
        assert!(r.is_empty());
    }

    #[test]
    fn duplicates_ignored() {
        let r = HashRing::new([NodeId(1), NodeId(1), NodeId(2)].into_iter(), 8);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn load_is_roughly_balanced() {
        let r = ring(10);
        let mut counts: HashMap<NodeId, u64> = HashMap::new();
        let n_keys = 100_000u64;
        for k in 0..n_keys {
            *counts.entry(r.node_for(KeyId(k)).unwrap()).or_default() += 1;
        }
        let expect = n_keys as f64 / 10.0;
        for (&node, &c) in &counts {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.35, "{node} holds {c} keys ({dev:.2} deviation)");
        }
        assert_eq!(counts.len(), 10);
    }

    #[test]
    fn removal_only_moves_keys_of_removed_node() {
        let full = ring(10);
        let smaller = full.without(&[NodeId(3)]);
        for k in 0..10_000 {
            let before = full.node_for(KeyId(k)).unwrap();
            let after = smaller.node_for(KeyId(k)).unwrap();
            if before != NodeId(3) {
                assert_eq!(before, after, "key {k} moved unnecessarily");
            } else {
                assert_ne!(after, NodeId(3));
            }
        }
    }

    #[test]
    fn addition_moves_about_one_over_k_plus_one() {
        let k = 9u32;
        let before = ring(k);
        let after = before.with(&[NodeId(k)]);
        let n_keys = 50_000u64;
        let moved = (0..n_keys)
            .filter(|&key| before.node_for(KeyId(key)) != after.node_for(KeyId(key)))
            .count() as f64;
        let frac = moved / n_keys as f64;
        let ideal = 1.0 / f64::from(k + 1);
        assert!(
            (frac - ideal).abs() < 0.05,
            "moved fraction {frac:.3}, ideal {ideal:.3}"
        );
        // Everything that moved went to the new node.
        for key in 0..n_keys {
            let b = before.node_for(KeyId(key)).unwrap();
            let a = after.node_for(KeyId(key)).unwrap();
            if b != a {
                assert_eq!(a, NodeId(k));
            }
        }
    }

    #[test]
    fn without_then_with_round_trips() {
        let r = ring(5);
        let same = r.without(&[NodeId(2)]).with(&[NodeId(2)]);
        for k in 0..1000 {
            assert_eq!(r.node_for(KeyId(k)), same.node_for(KeyId(k)));
        }
    }

    #[test]
    #[should_panic]
    fn zero_vnodes_rejected() {
        let _ = HashRing::new([NodeId(0)].into_iter(), 0);
    }

    #[test]
    fn node_for_hash_agrees_with_node_for() {
        let r = ring(4);
        for k in 0..100 {
            assert_eq!(
                r.node_for(KeyId(k)),
                r.node_for_hash(elmem_util::hashutil::mix64(k))
            );
        }
    }
}
