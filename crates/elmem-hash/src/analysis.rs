//! Ring load analysis: how evenly a membership spreads keys and
//! popularity.
//!
//! The evenness of the ring drives two effects the evaluation measures:
//! the spread in Fig. 7's node-choice experiment and the Naive
//! comparator's gap in Fig. 8 (see EXPERIMENTS.md). These helpers quantify
//! imbalance for a given ring and key population.

use std::collections::HashMap;

use elmem_util::{KeyId, NodeId};

use crate::ring::HashRing;

/// Per-node share statistics for a key population (optionally weighted).
#[derive(Debug, Clone, PartialEq)]
pub struct LoadStats {
    /// Each member's share of the total weight, sorted by node id.
    pub shares: Vec<(NodeId, f64)>,
    /// max(share) / mean(share): 1.0 = perfectly balanced.
    pub max_over_mean: f64,
    /// min(share) / mean(share).
    pub min_over_mean: f64,
    /// Coefficient of variation of the shares.
    pub cv: f64,
}

impl LoadStats {
    /// Computes the distribution of `weights` over `ring`'s members.
    ///
    /// Pass weight 1.0 per key for key-count balance, or each key's access
    /// probability for popularity balance.
    ///
    /// Returns `None` for an empty ring or empty key set.
    pub fn compute(ring: &HashRing, keys: impl Iterator<Item = (KeyId, f64)>) -> Option<LoadStats> {
        if ring.is_empty() {
            return None;
        }
        let mut per_node: HashMap<NodeId, f64> = ring.members().iter().map(|&n| (n, 0.0)).collect();
        let mut total = 0.0;
        let mut any = false;
        for (key, w) in keys {
            let node = ring.node_for(key).expect("ring nonempty");
            *per_node.entry(node).or_insert(0.0) += w;
            total += w;
            any = true;
        }
        if !any || total <= 0.0 {
            return None;
        }
        let mut shares: Vec<(NodeId, f64)> =
            per_node.into_iter().map(|(n, w)| (n, w / total)).collect();
        shares.sort_by_key(|(n, _)| *n);
        let n = shares.len() as f64;
        let mean = 1.0 / n;
        let max = shares.iter().map(|(_, s)| *s).fold(0.0, f64::max);
        let min = shares.iter().map(|(_, s)| *s).fold(1.0, f64::min);
        let var = shares
            .iter()
            .map(|(_, s)| (s - mean) * (s - mean))
            .sum::<f64>()
            / n;
        Some(LoadStats {
            shares,
            max_over_mean: max / mean,
            min_over_mean: min / mean,
            cv: var.sqrt() / mean,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_keys(n: u64) -> impl Iterator<Item = (KeyId, f64)> {
        (0..n).map(|k| (KeyId(k), 1.0))
    }

    #[test]
    fn many_vnodes_balance_well() {
        let ring = HashRing::new((0..10).map(NodeId), 256);
        let stats = LoadStats::compute(&ring, uniform_keys(100_000)).unwrap();
        assert_eq!(stats.shares.len(), 10);
        assert!(
            stats.max_over_mean < 1.3,
            "max/mean {}",
            stats.max_over_mean
        );
        assert!(
            stats.min_over_mean > 0.7,
            "min/mean {}",
            stats.min_over_mean
        );
        let total: f64 = stats.shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn few_vnodes_balance_poorly() {
        let few = HashRing::new((0..10).map(NodeId), 4);
        let many = HashRing::new((0..10).map(NodeId), 256);
        let s_few = LoadStats::compute(&few, uniform_keys(100_000)).unwrap();
        let s_many = LoadStats::compute(&many, uniform_keys(100_000)).unwrap();
        assert!(
            s_few.cv > s_many.cv,
            "few-vnode cv {} should exceed many-vnode cv {}",
            s_few.cv,
            s_many.cv
        );
    }

    #[test]
    fn weighting_shifts_shares() {
        let ring = HashRing::new((0..4).map(NodeId), 64);
        // All weight on one key: its owner holds share 1.0.
        let hot_owner = ring.node_for(KeyId(7)).unwrap();
        let stats = LoadStats::compute(&ring, std::iter::once((KeyId(7), 5.0))).unwrap();
        for (node, share) in &stats.shares {
            if *node == hot_owner {
                assert!((share - 1.0).abs() < 1e-12);
            } else {
                assert_eq!(*share, 0.0);
            }
        }
        assert!(stats.max_over_mean > 3.9);
    }

    #[test]
    fn empty_inputs_are_none() {
        let ring = HashRing::new((0..3).map(NodeId), 8);
        assert!(LoadStats::compute(&ring, std::iter::empty()).is_none());
        let empty = HashRing::new(std::iter::empty(), 8);
        assert!(LoadStats::compute(&empty, uniform_keys(5)).is_none());
    }

    #[test]
    fn members_with_no_keys_still_reported() {
        let ring = HashRing::new((0..8).map(NodeId), 64);
        let stats = LoadStats::compute(&ring, uniform_keys(4)).unwrap();
        assert_eq!(stats.shares.len(), 8, "all members present in shares");
    }
}
