//! Tier membership and remap analysis.
//!
//! [`Membership`] tracks the evolving set of cache nodes and builds rings on
//! demand; [`RemapStats`] quantifies how many keys a membership change moves
//! (used in tests and in the scale-out sizing argument of §III-D4).

use elmem_util::{ElmemError, KeyId, NodeId};

use crate::ring::HashRing;

/// The evolving membership of the Memcached tier.
///
/// # Example
///
/// ```
/// use elmem_hash::Membership;
/// use elmem_util::NodeId;
///
/// let mut m = Membership::new((0..4).map(NodeId), 64);
/// m.remove(&[NodeId(3)]).unwrap();
/// assert_eq!(m.ring().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Membership {
    ring: HashRing,
    next_id: u32,
}

impl Membership {
    /// Creates a membership over initial nodes.
    pub fn new(members: impl Iterator<Item = NodeId>, vnodes: u32) -> Self {
        let ring = HashRing::new(members, vnodes);
        let next_id = ring.members().iter().map(|n| n.0 + 1).max().unwrap_or(0);
        Membership { ring, next_id }
    }

    /// The current ring.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Current member list (sorted).
    pub fn members(&self) -> &[NodeId] {
        self.ring.members()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the tier has no members.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Removes nodes (scale-in commit).
    ///
    /// # Errors
    ///
    /// [`ElmemError::UnknownNode`] if a node is not a member;
    /// [`ElmemError::InvalidScaling`] if the removal would empty the tier.
    pub fn remove(&mut self, nodes: &[NodeId]) -> Result<(), ElmemError> {
        for n in nodes {
            if !self.ring.members().contains(n) {
                return Err(ElmemError::UnknownNode(n.0));
            }
        }
        if self.ring.len() <= nodes.len() {
            return Err(ElmemError::InvalidScaling(
                "cannot scale in to zero nodes".to_string(),
            ));
        }
        self.ring = self.ring.without(nodes);
        Ok(())
    }

    /// Adds `count` fresh nodes (scale-out commit); returns their ids.
    pub fn add_new(&mut self, count: usize) -> Vec<NodeId> {
        let ids: Vec<NodeId> = (0..count)
            .map(|i| NodeId(self.next_id + i as u32))
            .collect();
        self.next_id += count as u32;
        self.ring = self.ring.with(&ids);
        ids
    }

    /// Adds specific nodes back (e.g. re-adding a kept node).
    ///
    /// # Errors
    ///
    /// [`ElmemError::InvalidScaling`] if any node is already a member.
    pub fn add(&mut self, nodes: &[NodeId]) -> Result<(), ElmemError> {
        for n in nodes {
            if self.ring.members().contains(n) {
                return Err(ElmemError::InvalidScaling(format!(
                    "{n} is already a member"
                )));
            }
        }
        self.ring = self.ring.with(nodes);
        self.next_id = self
            .next_id
            .max(nodes.iter().map(|n| n.0 + 1).max().unwrap_or(0));
        Ok(())
    }
}

/// How a membership change remaps a sample of keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RemapStats {
    /// Keys whose owner changed.
    pub moved: u64,
    /// Keys sampled.
    pub total: u64,
}

impl RemapStats {
    /// Fraction of keys that moved.
    pub fn moved_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.moved as f64 / self.total as f64
        }
    }

    /// Compares placements of `keys` under two rings.
    pub fn compare(before: &HashRing, after: &HashRing, keys: impl Iterator<Item = KeyId>) -> Self {
        let mut stats = RemapStats::default();
        for k in keys {
            stats.total += 1;
            if before.node_for(k) != after.node_for(k) {
                stats.moved += 1;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: u32) -> Membership {
        Membership::new((0..n).map(NodeId), 64)
    }

    #[test]
    fn remove_unknown_node_fails() {
        let mut m = members(3);
        assert!(matches!(
            m.remove(&[NodeId(9)]),
            Err(ElmemError::UnknownNode(9))
        ));
    }

    #[test]
    fn remove_to_empty_fails() {
        let mut m = members(2);
        assert!(m.remove(&[NodeId(0), NodeId(1)]).is_err());
    }

    #[test]
    fn add_new_assigns_fresh_ids() {
        let mut m = members(3);
        let ids = m.add_new(2);
        assert_eq!(ids, vec![NodeId(3), NodeId(4)]);
        assert_eq!(m.len(), 5);
        let more = m.add_new(1);
        assert_eq!(more, vec![NodeId(5)]);
    }

    #[test]
    fn add_existing_fails() {
        let mut m = members(3);
        assert!(m.add(&[NodeId(1)]).is_err());
    }

    #[test]
    fn add_after_remove_reuses_nothing() {
        let mut m = members(3);
        m.remove(&[NodeId(2)]).unwrap();
        // next_id stays past the removed node: no id reuse.
        assert_eq!(m.add_new(1), vec![NodeId(3)]);
    }

    #[test]
    fn remap_stats_zero_when_unchanged() {
        let m = members(5);
        let stats = RemapStats::compare(m.ring(), m.ring(), (0..1000).map(KeyId));
        assert_eq!(stats.moved, 0);
        assert_eq!(stats.moved_fraction(), 0.0);
    }

    #[test]
    fn remap_stats_scale_out_fraction() {
        let before = members(9);
        let mut after = before.clone();
        after.add_new(1);
        let stats = RemapStats::compare(before.ring(), after.ring(), (0..20_000).map(KeyId));
        let f = stats.moved_fraction();
        assert!((f - 0.1).abs() < 0.05, "fraction {f}");
    }

    #[test]
    fn empty_remap_fraction_is_zero() {
        assert_eq!(RemapStats::default().moved_fraction(), 0.0);
    }
}
