//! Consistent hashing for the Memcached tier.
//!
//! The paper's client library (libmemcached-style) hashes each key onto one
//! node; consistent hashing is "typically employed to minimize the change in
//! key membership upon node failures" (§II-A), and ElMem's migration phases
//! hash keys against the *retained* membership to find migration targets
//! (§III-D1). Scale-out relies on the ketama property that growing from `k`
//! to `k+1` nodes remaps only ~`1/(k+1)` of the keys (§III-D4).
//!
//! [`HashRing`] is a ketama-style ring with virtual nodes; placement is a
//! pure function of the membership list, exactly like the client-side hash
//! in libmemcached — nodes never know their own key ranges.
//!
//! # Example
//!
//! ```
//! use elmem_hash::HashRing;
//! use elmem_util::{KeyId, NodeId};
//!
//! let ring = HashRing::new((0..10).map(NodeId), 100);
//! let node = ring.node_for(KeyId(42)).unwrap();
//! assert!(ring.members().contains(&node));
//!
//! // Removing the key's own node necessarily moves the key.
//! let smaller: Vec<NodeId> = ring.members().iter().copied()
//!     .filter(|n| *n != node).collect();
//! let ring2 = HashRing::new(smaller.into_iter(), 100);
//! assert_ne!(ring2.node_for(KeyId(42)), Some(node));
//! ```

pub mod analysis;
pub mod membership;
pub mod ring;

pub use analysis::LoadStats;
pub use membership::{Membership, RemapStats};
pub use ring::HashRing;
