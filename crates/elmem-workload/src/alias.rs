//! Walker/Vose alias table over Zipf ranks: O(1) sampling with a fixed
//! two-draw cost per key, no rejection loop, no `powf` on the hot path.
//!
//! The rejection-inversion sampler in [`crate::zipf`] is O(1) *expected*
//! but costs ~3 `powf` calls per accepted draw (more when it rejects). At
//! the paper's ~19M-key ETC scale, with 5 keys per request and hundreds of
//! millions of requests, that transcendental work dominates the serving
//! loop. The alias table trades a one-time O(n) build (parallelized over
//! rank chunks, deterministic regardless of worker count) for samples that
//! are two integer RNG draws plus one table load.
//!
//! # Determinism
//!
//! The table itself is a pure function of `(n, s)`: weights `r^{-s}` are
//! computed per rank, and the Vose small/large pairing loop is seeded with
//! ranks in ascending order, so the packed table is byte-identical across
//! builds, platforms, and build-time worker counts. Sampling consumes RNG
//! draws in a fixed pattern (one bounded draw for the column, one raw draw
//! for the coin), so a given `DetRng` stream always yields the same key
//! sequence. The *stream differs* from the rejection sampler's — which is
//! why the alias path only switches on above
//! [`crate::alias_threshold`] keys, far beyond every pinned golden trace.

use elmem_util::hashutil::mix64;
use elmem_util::par::{par_jobs, par_map_indexed};
use elmem_util::{DetRng, KeyId};
use rand::RngCore;

use crate::zipf::ZipfPopularity;

/// Precomputed alias table for a [`ZipfPopularity`] distribution.
///
/// Each of the `n` columns packs `(alias_rank0 << 32) | accept_threshold`
/// into one `u64` — 8 bytes per key, ~152 MB at 19M keys.
///
/// # Example
///
/// ```
/// use elmem_workload::{ZipfAlias, ZipfPopularity};
/// use elmem_util::DetRng;
///
/// let zipf = ZipfPopularity::new(1_000, 1.0, 42);
/// let alias = ZipfAlias::from_zipf(&zipf);
/// let mut rng = DetRng::seed(1);
/// let key = alias.sample(&mut rng);
/// assert!(key.0 < 1_000);
/// ```
#[derive(Clone)]
pub struct ZipfAlias {
    zipf: ZipfPopularity,
    /// Per-column `(alias << 32) | threshold`; empty for the uniform
    /// (`s ≈ 0`) special case, which needs no table.
    table: Vec<u64>,
}

impl std::fmt::Debug for ZipfAlias {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The table is megabytes at cluster scale — elide it.
        f.debug_struct("ZipfAlias")
            .field("zipf", &self.zipf)
            .field("table_len", &self.table.len())
            .finish()
    }
}

impl ZipfAlias {
    /// Builds the table for `zipf`'s `(n, s)`; the rank→key permutation is
    /// shared with (and identical to) the rejection sampler's.
    ///
    /// Ranks requiring `n > u32::MAX` are unsupported (the packed layout
    /// stores ranks in 32 bits); the paper's scale is ~19M.
    ///
    /// # Panics
    ///
    /// Panics if `zipf.n()` exceeds `u32::MAX`.
    pub fn from_zipf(zipf: &ZipfPopularity) -> Self {
        let n = zipf.n();
        assert!(n <= u64::from(u32::MAX), "alias table limited to u32 ranks");
        if zipf.exponent() < 1e-9 {
            // Uniform: sample_rank handles it with a single bounded draw.
            return ZipfAlias {
                zipf: zipf.clone(),
                table: Vec::new(),
            };
        }
        let s = zipf.exponent();
        let nu = n as usize;

        // Weights w_r = r^{-s}, computed in parallel chunks. Summation is
        // done per-chunk then reduced in chunk order, so the total — and
        // everything derived from it — is independent of worker count.
        let chunk = 1 << 16;
        let ranges: Vec<(u64, u64)> = (0..n.div_ceil(chunk))
            .map(|c| (c * chunk + 1, ((c + 1) * chunk).min(n)))
            .collect();
        let jobs = par_jobs();
        let chunks: Vec<(Vec<f64>, f64)> = par_map_indexed(jobs, &ranges, |_, &(lo, hi)| {
            let mut w = Vec::with_capacity((hi - lo + 1) as usize);
            let mut sum = 0.0f64;
            for r in lo..=hi {
                let x = (r as f64).powf(-s);
                w.push(x);
                sum += x;
            }
            (w, sum)
        });
        let total: f64 = chunks.iter().map(|(_, s)| s).sum();
        let mut scaled: Vec<f64> = Vec::with_capacity(nu);
        let scale = n as f64 / total;
        for (w, _) in &chunks {
            scaled.extend(w.iter().map(|x| x * scale));
        }

        // Vose's algorithm with index-ordered worklists (deterministic).
        let mut table = vec![0u64; nu];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s_i), Some(&l_i)) = (small.last(), large.last()) {
            small.pop();
            let p = scaled[s_i as usize];
            // threshold = round(p · 2^32), clamped: coin < threshold keeps
            // the column itself, else its alias.
            let thresh = ((p * (1u64 << 32) as f64).round() as u64).min(u64::from(u32::MAX));
            table[s_i as usize] = (u64::from(l_i) << 32) | thresh;
            let rem = (scaled[l_i as usize] + p) - 1.0;
            scaled[l_i as usize] = rem;
            if rem < 1.0 {
                large.pop();
                small.push(l_i);
            }
        }
        // Leftovers (float slop): probability 1, alias = self.
        for &i in small.iter().chain(large.iter()) {
            table[i as usize] = (u64::from(i) << 32) | u64::from(u32::MAX);
        }
        ZipfAlias {
            zipf: zipf.clone(),
            table,
        }
    }

    /// Number of keys.
    pub fn n(&self) -> u64 {
        self.zipf.n()
    }

    /// Draws a popularity rank in `1..=n` — exactly two RNG draws (one
    /// bounded column pick, one 32-bit coin), no rejection loop.
    #[inline]
    pub fn sample_rank(&self, rng: &mut DetRng) -> u64 {
        let n = self.zipf.n();
        if self.table.is_empty() {
            return 1 + rng.next_below(n);
        }
        let col = rng.next_below(n);
        let coin = (rng.next_u64() >> 32) as u32;
        let packed = self.table[col as usize];
        let rank0 = if u64::from(coin) < (packed & 0xffff_ffff) {
            col
        } else {
            packed >> 32
        };
        rank0 + 1
    }

    /// Draws a key (permuted rank, same permutation as the rejection
    /// sampler).
    #[inline]
    pub fn sample(&self, rng: &mut DetRng) -> KeyId {
        self.zipf.key_for_rank(self.sample_rank(rng))
    }

    /// A structural fingerprint of the packed table (for determinism
    /// tests: two builds of the same `(n, s)` must agree bit-for-bit).
    pub fn fingerprint(&self) -> u64 {
        let mut acc = mix64(self.zipf.n() ^ self.zipf.exponent().to_bits());
        for &w in &self.table {
            acc = mix64(acc ^ w);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn build_is_deterministic_across_worker_counts() {
        let zipf = ZipfPopularity::new(100_000, 1.0, 7);
        elmem_util::par::set_par_jobs(1);
        let serial = ZipfAlias::from_zipf(&zipf);
        elmem_util::par::set_par_jobs(4);
        let parallel = ZipfAlias::from_zipf(&zipf);
        elmem_util::par::set_par_jobs(0);
        assert_eq!(serial.table, parallel.table);
        assert_eq!(serial.fingerprint(), parallel.fingerprint());
    }

    #[test]
    fn rank_frequencies_follow_power_law() {
        let zipf = ZipfPopularity::new(1000, 1.0, 7);
        let alias = ZipfAlias::from_zipf(&zipf);
        let mut rng = DetRng::seed(2);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        let n = 200_000;
        for _ in 0..n {
            *counts.entry(alias.sample_rank(&mut rng)).or_default() += 1;
        }
        let c1 = counts.get(&1).copied().unwrap_or(0);
        let c10 = counts.get(&10).copied().unwrap_or(0);
        let c100 = counts.get(&100).copied().unwrap_or(0);
        assert!(c1 > c10 && c10 > c100, "c1={c1} c10={c10} c100={c100}");
        let ratio = c1 as f64 / c10.max(1) as f64;
        assert!((7.0..14.0).contains(&ratio), "ratio {ratio}");
        let ratio100 = c1 as f64 / c100.max(1) as f64;
        assert!((60.0..160.0).contains(&ratio100), "ratio100 {ratio100}");
    }

    #[test]
    fn rank_one_probability_matches_harmonic() {
        // Zipf(1.0) over 100: p(1) = 1/H_100 ≈ 0.1928.
        let zipf = ZipfPopularity::new(100, 1.0, 3);
        let alias = ZipfAlias::from_zipf(&zipf);
        let mut rng = DetRng::seed(8);
        let n = 200_000;
        let ones = (0..n).filter(|_| alias.sample_rank(&mut rng) == 1).count();
        let p = ones as f64 / n as f64;
        assert!((p - 0.1928).abs() < 0.01, "p(1) = {p}");
    }

    #[test]
    fn marginals_match_rejection_sampler() {
        // Same distribution, different draw streams: compare per-rank
        // frequencies between the two samplers.
        let zipf = ZipfPopularity::new(50, 0.9, 5);
        let alias = ZipfAlias::from_zipf(&zipf);
        let n = 400_000;
        let mut rng_a = DetRng::seed(3);
        let mut rng_b = DetRng::seed(4);
        let mut ca = [0u64; 51];
        let mut cb = [0u64; 51];
        for _ in 0..n {
            ca[alias.sample_rank(&mut rng_a) as usize] += 1;
            cb[zipf.sample_rank(&mut rng_b) as usize] += 1;
        }
        for r in 1..=50usize {
            let pa = ca[r] as f64 / n as f64;
            let pb = cb[r] as f64 / n as f64;
            assert!(
                (pa - pb).abs() < 0.01,
                "rank {r}: alias {pa:.4} vs rejection {pb:.4}"
            );
        }
    }

    #[test]
    fn keys_share_the_rejection_sampler_permutation() {
        let zipf = ZipfPopularity::new(1000, 1.1, 9);
        let alias = ZipfAlias::from_zipf(&zipf);
        for r in 1..=1000 {
            assert_eq!(alias.zipf.key_for_rank(r), zipf.key_for_rank(r));
        }
        let mut rng = DetRng::seed(12);
        for _ in 0..1000 {
            let k = alias.sample(&mut rng);
            assert!(k.0 < 1000);
        }
    }

    #[test]
    fn uniform_matches_rejection_sampler_stream() {
        // s ≈ 0 short-circuits to the same single bounded draw the
        // rejection sampler makes — streams are identical, not just
        // distributions.
        let zipf = ZipfPopularity::new(64, 0.0, 1);
        let alias = ZipfAlias::from_zipf(&zipf);
        let mut a = DetRng::seed(6);
        let mut b = DetRng::seed(6);
        for _ in 0..1000 {
            assert_eq!(alias.sample_rank(&mut a), zipf.sample_rank(&mut b));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let zipf = ZipfPopularity::new(5000, 1.0, 2);
        let alias = ZipfAlias::from_zipf(&zipf);
        let run = |seed| {
            let mut rng = DetRng::seed(seed);
            (0..100).map(|_| alias.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn single_key_always_sampled() {
        let zipf = ZipfPopularity::new(1, 1.2, 0);
        let alias = ZipfAlias::from_zipf(&zipf);
        let mut rng = DetRng::seed(10);
        for _ in 0..50 {
            assert_eq!(alias.sample(&mut rng), KeyId(0));
        }
    }
}
