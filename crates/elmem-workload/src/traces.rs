//! The five demand traces of Fig. 5.
//!
//! The paper drives its experiments with trace *snippets* "where demand
//! varies considerably", showing only normalized request rates "as these
//! are modified per system capabilities". We reproduce the published
//! shapes as piecewise-linear normalized curves (1-minute resolution over
//! a one-hour window, like the paper's plots):
//!
//! * **SYS** (Facebook): high plateau, steep drop around the 30-min mark to
//!   a low valley — drives the 10→7 scale-in;
//! * **ETC** (Facebook): diurnal dip and recovery — 10→9 then 9→10;
//! * **SAP**: gradual stepped decline — 10→9 then 9→8;
//! * **NLANR**: rise then fall — 8→9 then 9→8;
//! * **Microsoft**: bursty decline — 10→9 then 9→8.

use elmem_util::SimTime;
use serde::{Deserialize, Serialize};

/// Which published trace shape to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceKind {
    /// Facebook SYS \[12\].
    FacebookSys,
    /// Facebook ETC \[12\].
    FacebookEtc,
    /// SAP enterprise application trace \[49\].
    Sap,
    /// NLANR/WITS network trace \[50\].
    Nlanr,
    /// Microsoft storage trace \[23\].
    Microsoft,
}

impl TraceKind {
    /// All five traces, in the paper's Fig. 5 order.
    pub const ALL: [TraceKind; 5] = [
        TraceKind::FacebookSys,
        TraceKind::FacebookEtc,
        TraceKind::Sap,
        TraceKind::Nlanr,
        TraceKind::Microsoft,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::FacebookSys => "SYS",
            TraceKind::FacebookEtc => "ETC",
            TraceKind::Sap => "SAP",
            TraceKind::Nlanr => "NLANR",
            TraceKind::Microsoft => "Microsoft",
        }
    }

    /// The normalized demand curve (per-minute samples over one hour).
    pub fn demand_trace(self) -> DemandTrace {
        let samples: Vec<f64> = match self {
            // High plateau (~1.0), steep drop at min 30 to ~0.35 valley.
            TraceKind::FacebookSys => (0..60)
                .map(|m| match m {
                    0..=27 => 0.95 + 0.05 * ((m % 5) as f64 / 5.0),
                    28..=32 => 0.95 - 0.12 * f64::from(m - 27),
                    _ => 0.35 + 0.03 * (((m * 7) % 10) as f64 / 10.0),
                })
                .collect(),
            // Diurnal dip: 1.0 → 0.55 trough around min 30 → back to ~0.95.
            TraceKind::FacebookEtc => (0..60)
                .map(|m| {
                    let x = f64::from(m) / 59.0;
                    let dip = 0.45 * (-((x - 0.5) * (x - 0.5)) / 0.02).exp();
                    (1.0 - dip).clamp(0.0, 1.0)
                })
                .collect(),
            // Stepped gradual decline 1.0 → 0.5.
            TraceKind::Sap => (0..60)
                .map(|m| match m {
                    0..=14 => 1.0,
                    15..=29 => 0.85,
                    30..=44 => 0.68,
                    _ => 0.52,
                })
                .collect(),
            // Rise 0.6 → 1.0 by min 20, fall back to 0.55 by min 50.
            TraceKind::Nlanr => (0..60)
                .map(|m| match m {
                    0..=19 => 0.6 + 0.4 * f64::from(m) / 19.0,
                    20..=29 => 1.0,
                    30..=49 => 1.0 - 0.45 * f64::from(m - 29) / 20.0,
                    _ => 0.55,
                })
                .collect(),
            // Bursty decline: 1.0 → 0.45 with ±0.08 bursts.
            TraceKind::Microsoft => (0..60)
                .map(|m| {
                    let base = 1.0 - 0.55 * f64::from(m) / 59.0;
                    let burst = if m % 7 == 3 { 0.08 } else { 0.0 };
                    (base + burst).clamp(0.0, 1.0)
                })
                .collect(),
        };
        DemandTrace::new(samples, SimTime::from_secs(60))
    }
}

impl std::fmt::Display for TraceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A normalized demand curve: samples in `[0, 1]` at fixed spacing, linearly
/// interpolated, multiplied by a peak rate at query time.
///
/// # Example
///
/// ```
/// use elmem_workload::DemandTrace;
/// use elmem_util::SimTime;
///
/// let tr = DemandTrace::new(vec![1.0, 0.5], SimTime::from_secs(60));
/// assert_eq!(tr.normalized_at(SimTime::from_secs(30)), 0.75);
/// assert_eq!(tr.duration(), SimTime::from_secs(60));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandTrace {
    samples: Vec<f64>,
    /// Time between consecutive samples.
    step: SimTime,
}

impl DemandTrace {
    /// Creates a trace from normalized samples spaced `step` apart.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, contains values outside `[0, 1]`,
    /// or `step` is zero.
    pub fn new(samples: Vec<f64>, step: SimTime) -> Self {
        assert!(!samples.is_empty(), "empty trace");
        assert!(step > SimTime::ZERO, "zero step");
        assert!(
            samples.iter().all(|&s| (0.0..=1.0).contains(&s)),
            "samples must be normalized to [0, 1]"
        );
        DemandTrace { samples, step }
    }

    /// The normalized samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Sample spacing.
    pub fn step(&self) -> SimTime {
        self.step
    }

    /// Total duration covered: `(len - 1) * step` (last sample holds after).
    pub fn duration(&self) -> SimTime {
        self.step * (self.samples.len() as u64 - 1).max(1)
    }

    /// Normalized demand at `t` (linear interpolation; clamped at the ends).
    pub fn normalized_at(&self, t: SimTime) -> f64 {
        let pos = t.as_nanos() as f64 / self.step.as_nanos() as f64;
        let idx = pos.floor() as usize;
        if idx + 1 >= self.samples.len() {
            return *self.samples.last().expect("nonempty");
        }
        let frac = pos - idx as f64;
        self.samples[idx] * (1.0 - frac) + self.samples[idx + 1] * frac
    }

    /// Request rate at `t` for a given peak rate (req/s).
    pub fn rate_at(&self, t: SimTime, peak_rate: f64) -> f64 {
        self.normalized_at(t) * peak_rate
    }

    /// Parses a trace from newline-separated numbers (comments start with
    /// `#`; blank lines are skipped). Values are normalized by the maximum,
    /// so raw request-per-interval counts — the form real traces like the
    /// paper's Facebook/Microsoft inputs arrive in — can be pasted
    /// directly.
    ///
    /// # Errors
    ///
    /// Returns a message when no samples are present, a line fails to
    /// parse, or a value is negative/non-finite.
    ///
    /// # Example
    ///
    /// ```
    /// use elmem_workload::DemandTrace;
    /// use elmem_util::SimTime;
    ///
    /// let trace = DemandTrace::parse(
    ///     "# req/min\n1200\n600\n\n300\n",
    ///     SimTime::from_secs(60),
    /// ).unwrap();
    /// assert_eq!(trace.samples(), &[1.0, 0.5, 0.25]);
    /// ```
    pub fn parse(text: &str, step: SimTime) -> Result<DemandTrace, String> {
        let mut raw = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let v: f64 = line
                .parse()
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("line {}: invalid demand {v}", lineno + 1));
            }
            raw.push(v);
        }
        if raw.is_empty() {
            return Err("no samples".to_string());
        }
        let peak = raw.iter().copied().fold(0.0, f64::max);
        if peak <= 0.0 {
            return Err("all samples are zero".to_string());
        }
        Ok(DemandTrace::new(
            raw.into_iter().map(|v| v / peak).collect(),
            step,
        ))
    }

    /// The largest normalized demand in the trace.
    pub fn peak(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// The smallest normalized demand in the trace.
    pub fn trough(&self) -> f64 {
        self.samples.iter().copied().fold(1.0, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_traces_are_valid_and_hourlong() {
        for kind in TraceKind::ALL {
            let t = kind.demand_trace();
            assert_eq!(t.samples().len(), 60, "{kind}");
            assert!(
                t.peak() <= 1.0 && t.peak() > 0.8,
                "{kind} peak {}",
                t.peak()
            );
            assert!(t.trough() >= 0.0, "{kind}");
        }
    }

    #[test]
    fn sys_has_steep_midpoint_drop() {
        let t = TraceKind::FacebookSys.demand_trace();
        let before = t.normalized_at(SimTime::from_secs(25 * 60));
        let after = t.normalized_at(SimTime::from_secs(40 * 60));
        assert!(
            before > 2.0 * after,
            "SYS should drop >2x: {before} -> {after}"
        );
    }

    #[test]
    fn etc_dips_then_recovers() {
        let t = TraceKind::FacebookEtc.demand_trace();
        let start = t.normalized_at(SimTime::ZERO);
        let mid = t.normalized_at(SimTime::from_secs(30 * 60));
        let end = t.normalized_at(SimTime::from_secs(59 * 60));
        assert!(mid < start - 0.2, "mid {mid} vs start {start}");
        assert!(end > mid + 0.2, "end {end} vs mid {mid}");
    }

    #[test]
    fn nlanr_rises_then_falls() {
        let t = TraceKind::Nlanr.demand_trace();
        let start = t.normalized_at(SimTime::ZERO);
        let peak = t.normalized_at(SimTime::from_secs(25 * 60));
        let end = t.normalized_at(SimTime::from_secs(55 * 60));
        assert!(peak > start + 0.2);
        assert!(end < peak - 0.2);
    }

    #[test]
    fn interpolation_midpoint() {
        let t = DemandTrace::new(vec![0.0, 1.0], SimTime::from_secs(10));
        assert!((t.normalized_at(SimTime::from_secs(5)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn holds_last_sample_beyond_end() {
        let t = DemandTrace::new(vec![0.2, 0.8], SimTime::from_secs(10));
        assert_eq!(t.normalized_at(SimTime::from_secs(1000)), 0.8);
    }

    #[test]
    fn rate_scales_by_peak() {
        let t = DemandTrace::new(vec![0.5], SimTime::from_secs(1));
        assert_eq!(t.rate_at(SimTime::ZERO, 2000.0), 1000.0);
    }

    #[test]
    #[should_panic]
    fn unnormalized_samples_rejected() {
        let _ = DemandTrace::new(vec![1.5], SimTime::from_secs(1));
    }

    #[test]
    fn parse_normalizes_and_skips_comments() {
        let t = DemandTrace::parse("# header\n10\n5\n\n2.5\n", SimTime::from_secs(60)).unwrap();
        assert_eq!(t.samples(), &[1.0, 0.5, 0.25]);
        assert_eq!(t.step(), SimTime::from_secs(60));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(DemandTrace::parse("abc", SimTime::from_secs(1)).is_err());
        assert!(DemandTrace::parse("", SimTime::from_secs(1)).is_err());
        assert!(DemandTrace::parse("0\n0", SimTime::from_secs(1)).is_err());
        assert!(DemandTrace::parse("-1", SimTime::from_secs(1)).is_err());
        let err = DemandTrace::parse("1\nxyz", SimTime::from_secs(1)).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn display_names() {
        assert_eq!(TraceKind::FacebookSys.to_string(), "SYS");
        assert_eq!(TraceKind::Microsoft.to_string(), "Microsoft");
    }
}
