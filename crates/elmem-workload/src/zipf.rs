//! Zipf popularity over a keyspace.
//!
//! Facebook's Memcached traces are highly skewed; we model popularity as
//! Zipf(s) over `n` ranks, with a pseudorandom rank→key permutation so that
//! popular keys are spread across the consistent-hash ring rather than
//! clustered in id space.

use elmem_util::hashutil::mix64;
use elmem_util::{DetRng, KeyId};

/// Zipf sampler with O(1) sampling via rejection-inversion
/// (Hörmann & Derflinger, as in Apache Commons' `ZipfDistribution`),
/// plus a stable rank→key permutation.
///
/// # Example
///
/// ```
/// use elmem_workload::ZipfPopularity;
/// use elmem_util::DetRng;
///
/// let zipf = ZipfPopularity::new(1_000, 0.9, 42);
/// let mut rng = DetRng::seed(1);
/// let key = zipf.sample(&mut rng);
/// assert!(key.0 < 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfPopularity {
    n: u64,
    s: f64,
    /// Permutation seed mapping ranks to keys.
    perm_seed: u64,
    // Precomputed rejection-inversion constants.
    h_integral_x1: f64,
    h_integral_n: f64,
    threshold: f64,
}

impl ZipfPopularity {
    /// Creates a Zipf(s) sampler over keys `0..n` with a permutation
    /// determined by `perm_seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or `s` is negative or not finite.
    pub fn new(n: u64, s: f64, perm_seed: u64) -> Self {
        assert!(n > 0, "empty keyspace");
        assert!(s >= 0.0 && s.is_finite(), "invalid exponent {s}");
        let h_integral_x1 = h_integral(1.5, s) - 1.0; // h(1) = 1
        let h_integral_n = h_integral(n as f64 + 0.5, s);
        let threshold = 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s);
        ZipfPopularity {
            n,
            s,
            perm_seed,
            h_integral_x1,
            h_integral_n,
            threshold,
        }
    }

    /// Number of keys.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Zipf exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Draws a key (permuted rank).
    pub fn sample(&self, rng: &mut DetRng) -> KeyId {
        self.key_for_rank(self.sample_rank(rng))
    }

    /// Draws a popularity rank in `1..=n` (1 = most popular).
    pub fn sample_rank(&self, rng: &mut DetRng) -> u64 {
        if self.s < 1e-9 {
            // Uniform special case.
            return 1 + rng.next_below(self.n);
        }
        loop {
            let u = self.h_integral_n + rng.next_f64() * (self.h_integral_x1 - self.h_integral_n);
            let x = h_integral_inverse(u, self.s);
            let k = x.round().clamp(1.0, self.n as f64);
            if k - x <= self.threshold || u >= h_integral(k + 0.5, self.s) - h(k, self.s) {
                return k as u64;
            }
        }
    }

    /// The key assigned to a rank (stable pseudorandom permutation of
    /// `1..=n` onto `0..n`).
    pub fn key_for_rank(&self, rank: u64) -> KeyId {
        debug_assert!(rank >= 1 && rank <= self.n);
        // "Swap-or-not" rounds: each round conditionally swaps x with its
        // mirror n-1-x based on a hash of the unordered pair — a bijection
        // on [0, n) for any round count.
        let mut x = rank - 1;
        for round in 0..8u64 {
            x = swap_or_not_round(x, self.n, self.perm_seed ^ mix64(round));
        }
        KeyId(x)
    }
}

/// `H(x) = (x^{1-s} − 1)/(1−s)` (→ `ln x` as `s → 1`).
fn h_integral(x: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-12 {
        x.ln()
    } else {
        (x.powf(1.0 - s) - 1.0) / (1.0 - s)
    }
}

/// `h(x) = x^{-s}` — the unnormalized Zipf density.
fn h(x: f64, s: f64) -> f64 {
    x.powf(-s)
}

/// Inverse of [`h_integral`].
fn h_integral_inverse(u: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-12 {
        u.exp()
    } else {
        // Guard the radicand against tiny negative rounding error.
        (1.0 + u * (1.0 - s))
            .max(f64::MIN_POSITIVE)
            .powf(1.0 / (1.0 - s))
    }
}

/// One swap-or-not round: x ↦ possibly its mirror in [0, n).
fn swap_or_not_round(x: u64, n: u64, seed: u64) -> u64 {
    let partner = n - 1 - x;
    let lo = x.min(partner);
    let hi = x.max(partner);
    if mix64(lo ^ hi.rotate_left(32) ^ seed) & 1 == 1 {
        partner
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn samples_in_range() {
        let z = ZipfPopularity::new(100, 0.99, 7);
        let mut rng = DetRng::seed(1);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!(k.0 < 100);
        }
    }

    #[test]
    fn rank_frequencies_follow_power_law() {
        let z = ZipfPopularity::new(1000, 1.0, 7);
        let mut rng = DetRng::seed(2);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        let n = 200_000;
        for _ in 0..n {
            *counts.entry(z.sample_rank(&mut rng)).or_default() += 1;
        }
        let c1 = counts.get(&1).copied().unwrap_or(0);
        let c10 = counts.get(&10).copied().unwrap_or(0);
        let c100 = counts.get(&100).copied().unwrap_or(0);
        assert!(c1 > c10 && c10 > c100, "c1={c1} c10={c10} c100={c100}");
        // Zipf(1): p(1)/p(10) = 10 exactly; allow sampling noise.
        let ratio = c1 as f64 / c10.max(1) as f64;
        assert!((7.0..14.0).contains(&ratio), "ratio {ratio}");
        let ratio100 = c1 as f64 / c100.max(1) as f64;
        assert!((60.0..160.0).contains(&ratio100), "ratio100 {ratio100}");
    }

    #[test]
    fn rank_one_probability_matches_harmonic() {
        // Zipf(1.0) over 100: p(1) = 1/H_100 ≈ 1/5.187 ≈ 0.1928.
        let z = ZipfPopularity::new(100, 1.0, 3);
        let mut rng = DetRng::seed(8);
        let n = 200_000;
        let ones = (0..n).filter(|_| z.sample_rank(&mut rng) == 1).count();
        let p = ones as f64 / n as f64;
        assert!((p - 0.1928).abs() < 0.01, "p(1) = {p}");
    }

    #[test]
    fn permutation_is_bijective() {
        let z = ZipfPopularity::new(1000, 0.9, 99);
        let keys: HashSet<u64> = (1..=1000).map(|r| z.key_for_rank(r).0).collect();
        assert_eq!(keys.len(), 1000);
        assert!(keys.iter().all(|&k| k < 1000));
    }

    #[test]
    fn permutation_is_bijective_odd_n() {
        let z = ZipfPopularity::new(997, 0.9, 5);
        let keys: HashSet<u64> = (1..=997).map(|r| z.key_for_rank(r).0).collect();
        assert_eq!(keys.len(), 997);
    }

    #[test]
    fn permutation_depends_on_seed() {
        let a = ZipfPopularity::new(1000, 0.9, 1);
        let b = ZipfPopularity::new(1000, 0.9, 2);
        let diffs = (1..=1000)
            .filter(|&r| a.key_for_rank(r) != b.key_for_rank(r))
            .count();
        assert!(diffs > 100, "only {diffs} ranks remapped");
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = ZipfPopularity::new(10, 0.0, 3);
        let mut rng = DetRng::seed(5);
        let mut counts = [0u64; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng).0 as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn exponent_one_sampler_valid() {
        let z = ZipfPopularity::new(50, 1.0, 11);
        let mut rng = DetRng::seed(6);
        for _ in 0..1000 {
            let r = z.sample_rank(&mut rng);
            assert!((1..=50).contains(&r));
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let z1 = ZipfPopularity::new(500, 0.8, 4);
        let z2 = ZipfPopularity::new(500, 0.8, 4);
        let mut r1 = DetRng::seed(9);
        let mut r2 = DetRng::seed(9);
        for _ in 0..100 {
            assert_eq!(z1.sample(&mut r1), z2.sample(&mut r2));
        }
    }

    #[test]
    fn single_key_always_sampled() {
        let z = ZipfPopularity::new(1, 1.2, 0);
        let mut rng = DetRng::seed(10);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), KeyId(0));
        }
    }

    #[test]
    #[should_panic]
    fn empty_keyspace_rejected() {
        let _ = ZipfPopularity::new(0, 1.0, 0);
    }
}
