//! The request generator: trace-modulated Poisson arrivals of multi-get
//! web requests (the paper's httperf + PHP front end, §V-A).

use elmem_util::{DetRng, KeyId, SimTime};

use crate::alias::ZipfAlias;
use crate::keyspace::Keyspace;
use crate::traces::DemandTrace;
use crate::zipf::ZipfPopularity;

/// Configuration of the synthetic workload.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// The key population (sizes included).
    pub keyspace: Keyspace,
    /// Zipf popularity exponent (0 = uniform; Facebook-like ≈ 0.9–1.1).
    pub zipf_exponent: f64,
    /// KV fetches per web request (the paper fixes a constant multi-get
    /// fan-out per request).
    pub items_per_request: usize,
    /// Peak request rate, req/s, that the trace's `1.0` maps to.
    pub peak_rate: f64,
    /// The demand trace modulating the arrival rate.
    pub trace: DemandTrace,
}

/// One generated web request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WebRequest {
    /// Arrival time at the load balancer.
    pub arrival: SimTime,
    /// Keys fetched by this request (multi-get batch).
    pub keys: Vec<KeyId>,
}

/// Generates [`WebRequest`]s with exponential interarrival times whose rate
/// follows the demand trace (a non-homogeneous Poisson process via
/// thinning), and Zipf-popular multi-get batches.
///
/// The generator ends (returns `None`) when the trace duration is exhausted.
///
/// # Example
///
/// ```
/// use elmem_workload::{Keyspace, RequestGenerator, TraceKind, WorkloadConfig};
/// use elmem_util::DetRng;
///
/// let cfg = WorkloadConfig {
///     keyspace: Keyspace::new(1000, 0),
///     zipf_exponent: 1.0,
///     items_per_request: 3,
///     peak_rate: 100.0,
///     trace: TraceKind::Sap.demand_trace(),
/// };
/// let mut gen = RequestGenerator::new(cfg, DetRng::seed(1));
/// let first = gen.next_request().unwrap();
/// assert_eq!(first.keys.len(), 3);
/// ```
#[derive(Debug)]
pub struct RequestGenerator {
    config: WorkloadConfig,
    zipf: ZipfPopularity,
    /// O(1) alias sampler, built above [`crate::alias_threshold`] keys
    /// (or on demand via [`Self::with_alias_sampling`]). Draws a
    /// different — still deterministic — RNG stream than the rejection
    /// sampler, so it only engages far beyond the pinned golden scales.
    alias: Option<ZipfAlias>,
    arrivals_rng: DetRng,
    keys_rng: DetRng,
    now: SimTime,
    generated: u64,
}

impl RequestGenerator {
    /// Creates a generator. Keyspaces at or above
    /// [`crate::alias_threshold`] keys automatically use alias-table
    /// sampling.
    ///
    /// # Panics
    ///
    /// Panics if `items_per_request == 0` or `peak_rate <= 0`.
    pub fn new(config: WorkloadConfig, rng: DetRng) -> Self {
        let use_alias = config.keyspace.n_keys() >= crate::alias_threshold();
        Self::with_alias_sampling(config, rng, use_alias)
    }

    /// Creates a generator with alias sampling explicitly on or off,
    /// bypassing the key-count threshold (tests and benches).
    ///
    /// # Panics
    ///
    /// Panics if `items_per_request == 0` or `peak_rate <= 0`.
    pub fn with_alias_sampling(config: WorkloadConfig, rng: DetRng, use_alias: bool) -> Self {
        assert!(config.items_per_request > 0, "zero items per request");
        assert!(
            config.peak_rate > 0.0 && config.peak_rate.is_finite(),
            "invalid peak rate"
        );
        let zipf = ZipfPopularity::new(
            config.keyspace.n_keys(),
            config.zipf_exponent,
            rng.split("zipf-perm").next_f64().to_bits(),
        );
        let alias = use_alias.then(|| ZipfAlias::from_zipf(&zipf));
        RequestGenerator {
            arrivals_rng: rng.split("arrivals"),
            keys_rng: rng.split("keys"),
            zipf,
            alias,
            config,
            now: SimTime::ZERO,
            generated: 0,
        }
    }

    /// The alias sampler, when alias sampling is active.
    pub fn alias(&self) -> Option<&ZipfAlias> {
        self.alias.as_ref()
    }

    /// The workload configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// The popularity distribution in use (rank→key mapping included) —
    /// lets experiments prefill caches with the genuinely hottest keys.
    pub fn zipf(&self) -> &ZipfPopularity {
        &self.zipf
    }

    /// Requests generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// The simulated instant of the last generated arrival.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Generates the next request, or `None` once past the trace end.
    pub fn next_request(&mut self) -> Option<WebRequest> {
        let mut req = WebRequest {
            arrival: SimTime::ZERO,
            keys: Vec::new(),
        };
        self.next_request_into(&mut req).then_some(req)
    }

    /// Generates the next request into `req`, reusing its key buffer, and
    /// returns whether one was produced (`false` once past the trace end,
    /// leaving `req` untouched).
    ///
    /// This is the serving loop's entry point: one experiment serves
    /// hundreds of thousands of requests, and regrowing the same
    /// `items_per_request`-element vector each time is pure allocator
    /// traffic. The generated sequence is identical to repeated
    /// [`Self::next_request`] calls.
    pub fn next_request_into(&mut self, req: &mut WebRequest) -> bool {
        // Thinning (Lewis & Shedler): candidate events at the peak rate,
        // accepted with probability rate(t)/peak.
        let peak = self.config.peak_rate;
        let end = self.config.trace.duration();
        loop {
            let dt = self.arrivals_rng.next_exp(peak);
            self.now = self
                .now
                .checked_add(SimTime::from_secs_f64(dt))
                .unwrap_or(SimTime::MAX);
            if self.now > end {
                return false;
            }
            let accept_p = self.config.trace.normalized_at(self.now);
            if self.arrivals_rng.next_f64() < accept_p {
                break;
            }
        }
        req.arrival = self.now;
        req.keys.clear();
        match &self.alias {
            Some(alias) => req.keys.extend(
                (0..self.config.items_per_request).map(|_| alias.sample(&mut self.keys_rng)),
            ),
            None => req.keys.extend(
                (0..self.config.items_per_request).map(|_| self.zipf.sample(&mut self.keys_rng)),
            ),
        }
        self.generated += 1;
        true
    }

    /// Drains the generator into a vector (convenience for offline
    /// analyses; experiments stream instead).
    pub fn collect_all(mut self) -> Vec<WebRequest> {
        let mut out = Vec::new();
        while let Some(r) = self.next_request() {
            out.push(r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::{DemandTrace, TraceKind};

    fn config(peak: f64, trace: DemandTrace) -> WorkloadConfig {
        WorkloadConfig {
            keyspace: Keyspace::new(10_000, 0),
            zipf_exponent: 1.0,
            items_per_request: 5,
            peak_rate: peak,
            trace,
        }
    }

    #[test]
    fn arrivals_are_monotone_and_bounded() {
        let cfg = config(200.0, TraceKind::Sap.demand_trace());
        let end = cfg.trace.duration();
        let mut gen = RequestGenerator::new(cfg, DetRng::seed(1));
        let mut prev = SimTime::ZERO;
        while let Some(r) = gen.next_request() {
            assert!(r.arrival >= prev);
            assert!(r.arrival <= end);
            assert_eq!(r.keys.len(), 5);
            prev = r.arrival;
        }
        assert!(gen.generated() > 100);
    }

    #[test]
    fn rate_tracks_trace() {
        // Constant-rate trace halves → arrival count halves.
        let full = config(
            500.0,
            DemandTrace::new(vec![1.0; 11], SimTime::from_secs(30)),
        );
        let half = config(
            500.0,
            DemandTrace::new(vec![0.5; 11], SimTime::from_secs(30)),
        );
        let n_full = RequestGenerator::new(full, DetRng::seed(3))
            .collect_all()
            .len() as f64;
        let n_half = RequestGenerator::new(half, DetRng::seed(3))
            .collect_all()
            .len() as f64;
        let ratio = n_half / n_full;
        assert!((ratio - 0.5).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn empirical_rate_matches_peak() {
        let cfg = config(
            1000.0,
            DemandTrace::new(vec![1.0; 11], SimTime::from_secs(10)),
        );
        let reqs = RequestGenerator::new(cfg, DetRng::seed(4)).collect_all();
        // 100 seconds at 1000 req/s ≈ 100k arrivals.
        let rate = reqs.len() as f64 / 100.0;
        assert!((rate - 1000.0).abs() < 50.0, "rate {rate}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = RequestGenerator::new(
            config(100.0, TraceKind::Nlanr.demand_trace()),
            DetRng::seed(9),
        )
        .collect_all();
        let b = RequestGenerator::new(
            config(100.0, TraceKind::Nlanr.demand_trace()),
            DetRng::seed(9),
        )
        .collect_all();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.first(), b.first());
        assert_eq!(a.last(), b.last());
    }

    #[test]
    fn popular_keys_dominate() {
        let cfg = config(
            500.0,
            DemandTrace::new(vec![1.0; 3], SimTime::from_secs(30)),
        );
        let reqs = RequestGenerator::new(cfg, DetRng::seed(5)).collect_all();
        let mut counts: std::collections::HashMap<KeyId, u64> = Default::default();
        for r in &reqs {
            for k in &r.keys {
                *counts.entry(*k).or_default() += 1;
            }
        }
        let mut freq: Vec<u64> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = freq.iter().sum();
        let top100: u64 = freq.iter().take(100).sum();
        // Zipf(1) over 10k keys: top 100 ranks carry >50% of mass.
        assert!(
            top100 as f64 / total as f64 > 0.4,
            "top-100 share {}",
            top100 as f64 / total as f64
        );
    }

    #[test]
    fn into_variant_matches_allocating_variant() {
        let mk = || {
            RequestGenerator::new(
                config(300.0, TraceKind::Microsoft.demand_trace()),
                DetRng::seed(11),
            )
        };
        let mut a = mk();
        let mut b = mk();
        let mut scratch = WebRequest {
            arrival: SimTime::ZERO,
            keys: Vec::new(),
        };
        loop {
            let fresh = a.next_request();
            let reused = b.next_request_into(&mut scratch);
            assert_eq!(fresh.is_some(), reused);
            match fresh {
                Some(r) => assert_eq!(r, scratch),
                None => break,
            }
        }
        assert_eq!(a.generated(), b.generated());
    }

    #[test]
    fn new_below_threshold_matches_explicit_rejection_sampling() {
        // 10k keys is far below the alias threshold, so `new` must be the
        // rejection sampler — stream-identical, not just distributionally.
        let cfg = config(200.0, TraceKind::Sap.demand_trace());
        let a = RequestGenerator::new(cfg.clone(), DetRng::seed(21)).collect_all();
        let b = RequestGenerator::with_alias_sampling(cfg, DetRng::seed(21), false).collect_all();
        assert_eq!(a, b);
    }

    #[test]
    fn alias_generator_keeps_arrival_stream() {
        // Keys come from a different RNG sub-stream than arrivals, so
        // switching samplers must leave the arrival process untouched.
        let cfg = config(200.0, TraceKind::Sap.demand_trace());
        let rej = RequestGenerator::with_alias_sampling(cfg.clone(), DetRng::seed(5), false)
            .collect_all();
        let ali = RequestGenerator::with_alias_sampling(cfg, DetRng::seed(5), true).collect_all();
        assert_eq!(rej.len(), ali.len());
        for (a, b) in rej.iter().zip(&ali) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.keys.len(), b.keys.len());
        }
    }

    #[test]
    fn alias_generator_is_deterministic() {
        let cfg = config(150.0, TraceKind::Nlanr.demand_trace());
        let a = RequestGenerator::with_alias_sampling(cfg.clone(), DetRng::seed(13), true)
            .collect_all();
        let b = RequestGenerator::with_alias_sampling(cfg, DetRng::seed(13), true).collect_all();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn zero_items_rejected() {
        let mut cfg = config(10.0, TraceKind::Sap.demand_trace());
        cfg.items_per_request = 0;
        let _ = RequestGenerator::new(cfg, DetRng::seed(0));
    }
}
