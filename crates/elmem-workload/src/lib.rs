//! Workload generation: keyspaces, popularity and value-size distributions,
//! demand traces, and the request generator (§V-A2/§V-A3 of the paper).
//!
//! The paper drives its testbed with:
//!
//! * **keys** fixed at 11 bytes, **values** following a Generalized Pareto
//!   distribution with scale σ = 214.476 and shape κ = 0.348238 (the
//!   Facebook ETC distribution), ~19 M KV pairs;
//! * **popularity** skewed (Facebook-like), here Zipf with configurable
//!   exponent;
//! * **arrivals** with exponential interarrival times whose mean rate
//!   follows one of five demand traces (Fig. 5): Facebook SYS and ETC,
//!   SAP, NLANR, and Microsoft storage traces;
//! * each web request fetches a fixed number of random KV pairs
//!   (multi-get).
//!
//! # Example
//!
//! ```
//! use elmem_workload::{Keyspace, RequestGenerator, TraceKind, WorkloadConfig};
//! use elmem_util::DetRng;
//!
//! let cfg = WorkloadConfig {
//!     keyspace: Keyspace::new(100_000, 42),
//!     zipf_exponent: 0.9,
//!     items_per_request: 4,
//!     peak_rate: 1000.0,
//!     trace: TraceKind::FacebookEtc.demand_trace(),
//! };
//! let mut gen = RequestGenerator::new(cfg, DetRng::seed(7));
//! let req = gen.next_request().unwrap();
//! assert_eq!(req.keys.len(), 4);
//! ```

pub mod gpareto;
pub mod keyspace;
pub mod reqgen;
pub mod traces;
pub mod zipf;

pub use gpareto::GeneralizedPareto;
pub use keyspace::Keyspace;
pub use reqgen::{RequestGenerator, WebRequest, WorkloadConfig};
pub use traces::{DemandTrace, TraceKind};
pub use zipf::ZipfPopularity;
