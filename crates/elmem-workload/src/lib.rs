//! Workload generation: keyspaces, popularity and value-size distributions,
//! demand traces, and the request generator (§V-A2/§V-A3 of the paper).
//!
//! The paper drives its testbed with:
//!
//! * **keys** fixed at 11 bytes, **values** following a Generalized Pareto
//!   distribution with scale σ = 214.476 and shape κ = 0.348238 (the
//!   Facebook ETC distribution), ~19 M KV pairs;
//! * **popularity** skewed (Facebook-like), here Zipf with configurable
//!   exponent;
//! * **arrivals** with exponential interarrival times whose mean rate
//!   follows one of five demand traces (Fig. 5): Facebook SYS and ETC,
//!   SAP, NLANR, and Microsoft storage traces;
//! * each web request fetches a fixed number of random KV pairs
//!   (multi-get).
//!
//! # Example
//!
//! ```
//! use elmem_workload::{Keyspace, RequestGenerator, TraceKind, WorkloadConfig};
//! use elmem_util::DetRng;
//!
//! let cfg = WorkloadConfig {
//!     keyspace: Keyspace::new(100_000, 42),
//!     zipf_exponent: 0.9,
//!     items_per_request: 4,
//!     peak_rate: 1000.0,
//!     trace: TraceKind::FacebookEtc.demand_trace(),
//! };
//! let mut gen = RequestGenerator::new(cfg, DetRng::seed(7));
//! let req = gen.next_request().unwrap();
//! assert_eq!(req.keys.len(), 4);
//! ```

pub mod alias;
pub mod gpareto;
pub mod keyspace;
pub mod reqgen;
pub mod traces;
pub mod zipf;

pub use alias::ZipfAlias;
pub use gpareto::GeneralizedPareto;
pub use keyspace::Keyspace;
pub use reqgen::{RequestGenerator, WebRequest, WorkloadConfig};
pub use traces::{DemandTrace, TraceKind};
pub use zipf::ZipfPopularity;

use std::sync::atomic::{AtomicU64, Ordering};

/// Default key count above which [`RequestGenerator`] switches from
/// rejection-inversion Zipf sampling to a precomputed alias table.
///
/// Deliberately above every laptop-scale scenario (≤ 1.4M keys): the
/// alias sampler draws a *different* (still deterministic) RNG stream, so
/// switching below this would invalidate pinned golden traces.
pub const DEFAULT_ALIAS_THRESHOLD: u64 = 4_000_000;

static ALIAS_THRESHOLD: AtomicU64 = AtomicU64::new(DEFAULT_ALIAS_THRESHOLD);

/// Key count at which alias-table sampling kicks in.
pub fn alias_threshold() -> u64 {
    ALIAS_THRESHOLD.load(Ordering::Relaxed)
}

/// Overrides [`alias_threshold`] (benches: `u64::MAX` emulates the
/// pre-optimization path; `0` forces the alias path everywhere).
pub fn set_alias_threshold(keys: u64) {
    ALIAS_THRESHOLD.store(keys, Ordering::Relaxed);
}
