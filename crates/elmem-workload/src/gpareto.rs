//! Generalized Pareto value-size distribution.
//!
//! §V-A2: "value sizes follow a Generalized Pareto distribution with scale
//! (σ) of 214.476 and shape (κ) of 0.348238, similar to the distribution
//! reported by Facebook \[12\]", with values ranging from 1 byte up to
//! ~1 MB (the slab cap).

use serde::{Deserialize, Serialize};

/// Generalized Pareto distribution (location 0) sampled by inverse CDF.
///
/// `F⁻¹(u) = σ/κ · ((1-u)^{-κ} − 1)` for shape `κ ≠ 0`.
///
/// # Example
///
/// ```
/// use elmem_workload::GeneralizedPareto;
///
/// let gp = GeneralizedPareto::facebook_etc();
/// let size = gp.quantile(0.5);
/// assert!(size > 0.0 && size < 1000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneralizedPareto {
    /// Scale parameter σ > 0.
    pub scale: f64,
    /// Shape parameter κ.
    pub shape: f64,
}

impl GeneralizedPareto {
    /// The paper's Facebook-ETC parameters: σ = 214.476, κ = 0.348238.
    pub fn facebook_etc() -> Self {
        GeneralizedPareto {
            scale: 214.476,
            shape: 0.348238,
        }
    }

    /// Creates a distribution.
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0` or parameters are not finite.
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(scale > 0.0 && scale.is_finite(), "invalid scale {scale}");
        assert!(shape.is_finite(), "invalid shape {shape}");
        GeneralizedPareto { scale, shape }
    }

    /// The `u`-quantile (inverse CDF), `u ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is outside `[0, 1)`.
    pub fn quantile(&self, u: f64) -> f64 {
        assert!((0.0..1.0).contains(&u), "quantile arg out of range: {u}");
        if self.shape.abs() < 1e-12 {
            // κ → 0 limit: exponential with mean σ.
            -self.scale * (1.0 - u).ln()
        } else {
            self.scale / self.shape * ((1.0 - u).powf(-self.shape) - 1.0)
        }
    }

    /// Theoretical mean, `σ / (1 − κ)` for `κ < 1`, else `None` (infinite).
    pub fn mean(&self) -> Option<f64> {
        (self.shape < 1.0).then(|| self.scale / (1.0 - self.shape))
    }

    /// Draws a value-size in bytes, clamped to `[1, max_bytes]`.
    pub fn sample_bytes(&self, u: f64, max_bytes: u32) -> u32 {
        let v = self.quantile(u);
        (v.round() as u32).clamp(1, max_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmem_util::DetRng;

    #[test]
    fn facebook_parameters() {
        let gp = GeneralizedPareto::facebook_etc();
        assert!((gp.scale - 214.476).abs() < 1e-9);
        assert!((gp.shape - 0.348238).abs() < 1e-9);
    }

    #[test]
    fn quantile_is_monotone() {
        let gp = GeneralizedPareto::facebook_etc();
        let mut prev = -1.0;
        for i in 0..100 {
            let q = gp.quantile(f64::from(i) / 100.0);
            assert!(q > prev);
            prev = q;
        }
    }

    #[test]
    fn quantile_zero_is_zero() {
        let gp = GeneralizedPareto::facebook_etc();
        assert_eq!(gp.quantile(0.0), 0.0);
    }

    #[test]
    fn empirical_mean_matches_theory() {
        let gp = GeneralizedPareto::facebook_etc();
        let mut rng = DetRng::seed(3);
        let n = 500_000;
        let sum: f64 = (0..n).map(|_| gp.quantile(rng.next_f64())).sum();
        let mean = sum / f64::from(n);
        let theory = gp.mean().unwrap(); // ≈ 329
        assert!(
            (mean - theory).abs() / theory < 0.05,
            "mean {mean}, theory {theory}"
        );
    }

    #[test]
    fn exponential_limit_at_zero_shape() {
        let gp = GeneralizedPareto::new(100.0, 0.0);
        // Median of Exp(1/100) is 100·ln2 ≈ 69.3.
        assert!((gp.quantile(0.5) - 69.31).abs() < 0.1);
    }

    #[test]
    fn heavy_tail_mean_is_none_for_large_shape() {
        assert!(GeneralizedPareto::new(1.0, 1.5).mean().is_none());
    }

    #[test]
    fn sample_bytes_clamped() {
        let gp = GeneralizedPareto::facebook_etc();
        assert_eq!(gp.sample_bytes(0.0, 10_000), 1);
        assert_eq!(gp.sample_bytes(0.999999, 500), 500);
    }

    #[test]
    #[should_panic]
    fn quantile_one_rejected() {
        let _ = GeneralizedPareto::facebook_etc().quantile(1.0);
    }

    #[test]
    #[should_panic]
    fn non_positive_scale_rejected() {
        let _ = GeneralizedPareto::new(0.0, 0.3);
    }
}
