//! The keyspace: deterministic per-key value sizes.
//!
//! In the paper's workload, each of the ~19 M keys has a fixed value whose
//! size is drawn from the Generalized Pareto distribution (§V-A2). We derive
//! each key's size deterministically from its id, so every component (web
//! tier, database model, migration agents) agrees on sizes without shared
//! state.

use elmem_util::hashutil::mix64;
use elmem_util::{ByteSize, KeyId};
use serde::{Deserialize, Serialize};

use crate::gpareto::GeneralizedPareto;

/// A fixed population of keys with deterministic value sizes.
///
/// # Example
///
/// ```
/// use elmem_workload::Keyspace;
/// use elmem_util::KeyId;
///
/// let ks = Keyspace::new(10_000, 42);
/// let s1 = ks.value_size(KeyId(7));
/// assert_eq!(s1, ks.value_size(KeyId(7))); // stable
/// assert!(s1 >= 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Keyspace {
    /// Number of keys (`KeyId(0)..KeyId(n_keys)`).
    n_keys: u64,
    /// Seed decorrelating sizes from other uses of the key id.
    seed: u64,
    /// Value-size distribution.
    dist: GeneralizedPareto,
    /// Cap on a single value, bytes (paper: values range 1 B – ~1 MB slabs;
    /// ETC's reported sizes run 1 B to ~10 kB).
    max_value: u32,
}

impl Keyspace {
    /// Default cap on value sizes, matching the paper's ETC range
    /// (1 B – 10 kB dominates the mass).
    pub const DEFAULT_MAX_VALUE: u32 = 100_000;

    /// Creates a keyspace of `n_keys` with Facebook-ETC sizes.
    ///
    /// # Panics
    ///
    /// Panics if `n_keys == 0`.
    pub fn new(n_keys: u64, seed: u64) -> Self {
        Self::with_distribution(
            n_keys,
            seed,
            GeneralizedPareto::facebook_etc(),
            Self::DEFAULT_MAX_VALUE,
        )
    }

    /// Creates a keyspace with an explicit size distribution and cap.
    ///
    /// # Panics
    ///
    /// Panics if `n_keys == 0` or `max_value == 0`.
    pub fn with_distribution(
        n_keys: u64,
        seed: u64,
        dist: GeneralizedPareto,
        max_value: u32,
    ) -> Self {
        assert!(n_keys > 0, "empty keyspace");
        assert!(max_value > 0, "zero max value");
        Keyspace {
            n_keys,
            seed,
            dist,
            max_value,
        }
    }

    /// Number of keys.
    pub fn n_keys(&self) -> u64 {
        self.n_keys
    }

    /// Whether `key` belongs to this keyspace.
    pub fn contains(&self, key: KeyId) -> bool {
        key.0 < self.n_keys
    }

    /// The (stable) value size of a key, in bytes.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the key is out of range.
    pub fn value_size(&self, key: KeyId) -> u32 {
        debug_assert!(self.contains(key), "key {key} out of range");
        // 53-bit uniform in [0, 1) from the key hash.
        let u = (mix64(key.0 ^ self.seed) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.dist.sample_bytes(u, self.max_value)
    }

    /// Total bytes of all values (the dataset size on the database).
    ///
    /// Computed by sampling when the keyspace is large (>1M keys): the exact
    /// sum over 19M keys would be slow to call repeatedly.
    pub fn estimated_total_bytes(&self) -> ByteSize {
        let sample = 100_000.min(self.n_keys);
        let stride = (self.n_keys / sample).max(1);
        let mut sum = 0u64;
        let mut count = 0u64;
        let mut k = 0u64;
        while k < self.n_keys {
            sum += u64::from(self.value_size(KeyId(k)));
            count += 1;
            k += stride;
        }
        ByteSize(sum * self.n_keys / count.max(1))
    }

    /// Iterates all keys.
    pub fn keys(&self) -> impl Iterator<Item = KeyId> {
        (0..self.n_keys).map(KeyId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_stable_and_positive() {
        let ks = Keyspace::new(1000, 1);
        for k in ks.keys() {
            let s = ks.value_size(k);
            assert!(s >= 1);
            assert_eq!(s, ks.value_size(k));
        }
    }

    #[test]
    fn sizes_vary_across_keys() {
        let ks = Keyspace::new(1000, 1);
        let distinct: std::collections::HashSet<u32> =
            ks.keys().map(|k| ks.value_size(k)).collect();
        assert!(
            distinct.len() > 100,
            "only {} distinct sizes",
            distinct.len()
        );
    }

    #[test]
    fn mean_size_matches_distribution() {
        let ks = Keyspace::new(200_000, 2);
        let sum: u64 = ks.keys().map(|k| u64::from(ks.value_size(k))).sum();
        let mean = sum as f64 / ks.n_keys() as f64;
        // GP(σ=214.476, κ=0.348238) mean ≈ 329; clamping trims the tail a bit.
        assert!((250.0..400.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn different_seeds_give_different_assignments() {
        let a = Keyspace::new(1000, 1);
        let b = Keyspace::new(1000, 2);
        let diffs = a
            .keys()
            .filter(|&k| a.value_size(k) != b.value_size(k))
            .count();
        assert!(diffs > 500);
    }

    #[test]
    fn estimated_total_bytes_close_to_exact_sum() {
        let ks = Keyspace::new(50_000, 3);
        let exact: u64 = ks.keys().map(|k| u64::from(ks.value_size(k))).sum();
        let est = ks.estimated_total_bytes().as_u64();
        let rel = (est as f64 - exact as f64).abs() / exact as f64;
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn contains_bounds() {
        let ks = Keyspace::new(10, 0);
        assert!(ks.contains(KeyId(9)));
        assert!(!ks.contains(KeyId(10)));
    }

    #[test]
    #[should_panic]
    fn empty_rejected() {
        let _ = Keyspace::new(0, 0);
    }
}
